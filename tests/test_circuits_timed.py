"""Timed circuit reservations (section 4.7): windows, slack, delay,
postponement, and window misses."""

from repro.circuits.table import CircuitWalk, HopRecord
from repro.noc.topology import Port
from repro.sim.config import Variant


def reply_of(c, req):
    replies = [m for _, m in c.deliveries
               if m.vn == 1 and m.circuit_key == req.circuit_key]
    assert len(replies) == 1
    return replies[0]


def test_exact_window_with_zero_slack(chip):
    """With no contention the optimistic estimate is cycle-exact."""
    c = chip(Variant.TIMED_NOACK)
    req = c.request(0, 15)
    c.run_until_drained()
    reply = reply_of(c, req)
    assert reply.outcome == "on_circuit"
    assert reply.network_latency == 20  # full circuit speed
    assert reply.queueing_latency == 1  # no window wait needed


def test_windows_expire_and_free_storage(chip):
    c = chip(Variant.TIMED_NOACK, turnaround=7)
    c.request(0, 15)
    c.run_until_drained()
    # run past all windows; lazy expiry purges on next count
    c.run(200)
    assert c.net.circuit_entries() == 0


def test_delayed_reply_misses_window_and_is_undone(chip):
    """A reply later than its window must go packet-switched (undone)."""
    c = chip(Variant.TIMED_NOACK, turnaround=7)
    req = c.request(0, 15)
    # Run until the request is delivered but its reply has not fired yet,
    # then postpone the pending reply far beyond its reserved windows.
    c.run(40)
    assert c._timers, "request should be delivered with the reply pending"
    c._timers = [(due + 300, msg) for due, msg in c._timers]
    c.run_until_drained(20000)
    reply = reply_of(c, req)
    assert reply.outcome == "undone"
    assert not reply.uses_circuit
    assert c.stats.counter("circuit.window_missed") == 1


def test_slack_absorbs_moderate_delay(chip):
    c = chip(Variant.SLACK4_NOACK, turnaround=7)
    req = c.request(0, 15)
    c.run(40)
    assert c._timers
    # path has 6 hops -> slack budget = 4 * 6 = 24 cycles
    c._timers = [(due + 20, msg) for due, msg in c._timers]
    c.run_until_drained(20000)
    reply = reply_of(c, req)
    assert reply.outcome == "on_circuit"


def test_slack_does_not_absorb_excess_delay(chip):
    c = chip(Variant.SLACK1_NOACK, turnaround=7)
    req = c.request(0, 15)
    c.run(40)
    assert c._timers
    c._timers = [(due + 100, msg) for due, msg in c._timers]
    c.run_until_drained(20000)
    assert reply_of(c, req).outcome == "undone"


def test_postponed_circuits_force_wait(chip):
    c = chip(Variant.POSTPONED1_NOACK)
    req = c.request(0, 15)
    c.run_until_drained()
    reply = reply_of(c, req)
    assert reply.outcome == "on_circuit"
    # 6 hops -> postponement of 6 cycles; +1 for the enqueue-to-send cycle
    assert reply.queueing_latency == 7
    assert reply.network_latency == 20


def test_timed_windows_allow_output_sharing_in_disjoint_slots(chip):
    """The whole point of timed reservations: circuits that would conflict
    untimed can coexist when their time slots do not overlap."""
    untimed = chip(Variant.COMPLETE, turnaround=600)
    a = untimed.request(0, 15, addr=0x100)
    untimed.run(90)
    b = untimed.request(12, 3, addr=0x200)
    untimed.run(90)
    untimed_conflict = b.walk.failed

    timed = chip(Variant.TIMED_NOACK, turnaround=600)
    ta = timed.request(0, 15, addr=0x100)
    timed.run(90)
    tb = timed.request(12, 3, addr=0x200)
    timed.run(90)
    if untimed_conflict:
        # the same pair must be reservable with timed windows, because the
        # two replies pass shared routers hundreds of cycles apart
        assert tb.walk is not None and not tb.walk.failed
    untimed.run_until_drained(30000)
    timed.run_until_drained(30000)


def test_feasible_departure_math():
    walk = CircuitWalk(key=(0, 0x40, 1), reply_flits=5, path_hops=2,
                       turnaround=7)
    # two hops: windows for routers R0 (i=0) and R1=Rn (i=1)
    walk.hops.append(HopRecord(0, Port.EAST, Port.LOCAL, True,
                               window_start=120, window_end=130))
    walk.hops.append(HopRecord(1, Port.LOCAL, Port.WEST, True,
                               window_start=118, window_end=128))
    # head reaches Rn at t+2 and R0 at t+4
    depart = walk.feasible_departure(0, circuit_hop_cycles=2, ni_link_cycles=2)
    assert depart is not None
    # check: head at R1 = depart+2 >= 118, tail = +4 <= 128
    assert depart + 2 >= 118 and depart + 2 + 4 <= 128
    assert depart + 4 >= 120 and depart + 4 + 4 <= 130
    # a reply that is ready too late cannot use the circuit
    assert walk.feasible_departure(1000, 2, 2) is None


def test_feasible_departure_waits_for_future_window():
    walk = CircuitWalk(key=(0, 0x40, 1), reply_flits=1, path_hops=0,
                       turnaround=7)
    walk.hops.append(HopRecord(0, Port.LOCAL, Port.LOCAL, True,
                               window_start=50, window_end=50))
    assert walk.feasible_departure(10, 2, 2) == 48
