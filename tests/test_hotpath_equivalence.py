"""A/B equivalence of the saturation hot path vs. the reference pipeline.

The hot-path overhaul's contract is *bit-identical* behaviour: the merged
router tick, the fused kernel ``tick_wake`` protocol, the precomputed
route tables, the index-rotation arbiters, the allocation bypass and the
batched counters must produce exactly the same stats counters, means,
histograms and finish cycles as the pre-overhaul reference pipeline
(``config.noc.fastpath = False`` builds ``ReferenceRouter`` /
``ReferenceNetworkInterface`` with the reference arbiters and per-event
stats).  These tests pin that contract at four levels:

* full traffic runs per variant at saturation and at low load, bare and
  with telemetry + invariant checking attached;
* a full CMP system (cores + MESI + NoC) run to completion both ways;
* hypothesis property tests for the building blocks (route tables vs.
  the routing functions, fast vs. reference arbiter, allocation bypass);
* the batched-counter flush boundaries (Stats.merge/reset, interval
  probes) and the profiler's self-measurement calibration.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_system, workload_by_name
from repro.noc.allocators import (
    ArbiterPool,
    ReferenceRoundRobinArbiter,
    RoundRobinArbiter,
    reference_two_phase_allocate,
    two_phase_allocate,
)
from repro.noc.routing import route_for_vn, route_tables, route_xy, route_yx
from repro.noc.topology import Mesh
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant, small_test_config
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.telemetry import KernelProfiler, Telemetry, TelemetryConfig
from repro.telemetry.metrics import counter_rate
from repro.validate.invariants import InvariantMonitor

#: Every distinct policy/pipeline shape, including a timed variant so the
#: reservation-window purge path runs under both pipelines.
VARIANTS = [
    Variant.BASELINE,
    Variant.COMPLETE,
    Variant.FRAGMENTED,
    Variant.IDEAL,
    Variant.TIMED_NOACK,
]

#: Saturating load for the 16-node mesh (the regime the tentpole targets).
SATURATION_RATE = 48.0


def snapshot(stats):
    """Every accumulator in comparable form (the bit-identity witness)."""
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (dict(h.buckets), h.count) for k, h in stats.histograms.items()},
    )


def with_fastpath(cfg, fastpath):
    return dataclasses.replace(
        cfg, noc=dataclasses.replace(cfg.noc, fastpath=fastpath)
    )


def traffic_run(variant, rate, cycles, fastpath, seed=1, n_cores=16,
                telemetry_dir=None, invariants=False, always_tick=False):
    cfg = with_fastpath(
        SystemConfig(n_cores=n_cores).with_variant(variant), fastpath
    )
    t = RequestReplyTraffic(cfg, rate, seed=seed)
    if always_tick:
        t.sim.set_always_tick(True)
    if invariants:
        InvariantMonitor(t.net, interval=250).attach(t.sim)
    telem = None
    if telemetry_dir is not None:
        telem = Telemetry(TelemetryConfig(
            interval=250,
            out_dir=str(telemetry_dir / "out"),
            trace_dir=str(telemetry_dir / "trace"),
        )).attach(t)
    t.run(cycles)
    t.drain()
    if telem is not None:
        telem.detach()
    return (
        snapshot(t.net.stats),
        t.cycle,
        t.requests_sent,
        t.replies_received,
        tuple(t.reply_latencies),
    )


# ---------------------------------------------------------------------------
# Full traffic runs: fast pipeline vs. reference pipeline.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
def test_saturation_bit_identical(variant):
    fast = traffic_run(variant, SATURATION_RATE, 2000, fastpath=True)
    ref = traffic_run(variant, SATURATION_RATE, 2000, fastpath=False)
    assert fast == ref


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
def test_low_load_bit_identical(variant):
    fast = traffic_run(variant, 6.0, 2000, fastpath=True)
    ref = traffic_run(variant, 6.0, 2000, fastpath=False)
    assert fast == ref


@pytest.mark.parametrize(
    "variant", [Variant.COMPLETE, Variant.FRAGMENTED], ids=lambda v: v.name
)
def test_bit_identical_with_telemetry_and_invariants(variant, tmp_path):
    """Observers force mid-run flushes of the batched counters; results
    must still match a bare reference run exactly (satellite: samplers,
    invariant checkers and forensics always read through a flush)."""
    fast = traffic_run(variant, SATURATION_RATE, 2000, fastpath=True,
                       telemetry_dir=tmp_path, invariants=True)
    ref = traffic_run(variant, SATURATION_RATE, 2000, fastpath=False)
    assert fast == ref


@pytest.mark.parametrize(
    "variant", [Variant.FRAGMENTED, Variant.IDEAL], ids=lambda v: v.name
)
def test_fused_tick_wake_matches_always_tick(variant):
    """The kernel's fused tick+next_wake protocol (``tick_wake``) must be
    invisible: forced always-tick mode (which calls the plain ``tick``
    wrappers) produces identical results."""
    fused = traffic_run(variant, 24.0, 1500, fastpath=True)
    always = traffic_run(variant, 24.0, 1500, fastpath=True,
                         always_tick=True)
    assert fused == always


def test_full_system_bit_identical():
    def run(fastpath):
        cfg = with_fastpath(
            small_test_config(16, Variant.COMPLETE, seed=3), fastpath
        )
        system = build_system(cfg, workload_by_name("fluidanimate"))
        cycles = system.run_instructions(200, max_cycles=1_500_000)
        system.drain()
        return snapshot(system.stats), cycles, system.sim.cycle

    assert run(fastpath=True) == run(fastpath=False)


# ---------------------------------------------------------------------------
# Precomputed route tables == the routing functions, for every input.
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    side=st.integers(min_value=1, max_value=8),
    here=st.integers(min_value=0),
    dest=st.integers(min_value=0),
    request_xy=st.booleans(),
)
def test_route_tables_match_routing_functions(side, here, dest, request_xy):
    mesh = Mesh(side)
    here %= mesh.n_nodes
    dest %= mesh.n_nodes
    req_table, rep_table = route_tables(mesh, request_xy)
    assert req_table[here][dest] == route_for_vn(
        mesh, 0, here, dest, request_xy)
    assert rep_table[here][dest] == route_for_vn(
        mesh, 1, here, dest, request_xy)
    xy_table = req_table if request_xy else rep_table
    yx_table = rep_table if request_xy else req_table
    assert xy_table[here][dest] == route_xy(mesh, here, dest)
    assert yx_table[here][dest] == route_yx(mesh, here, dest)


def test_route_tables_cover_whole_mesh():
    mesh = Mesh(4)
    req_table, rep_table = route_tables(mesh)
    for here in range(mesh.n_nodes):
        for dest in range(mesh.n_nodes):
            assert req_table[here][dest] == route_xy(mesh, here, dest)
            assert rep_table[here][dest] == route_yx(mesh, here, dest)


# ---------------------------------------------------------------------------
# Arbiters: index rotation vs. the list-copying reference.
# ---------------------------------------------------------------------------
candidate_lists = st.lists(
    st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6, unique=True),
    min_size=1,
    max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(history=candidate_lists)
def test_arbiter_equivalence_property(history):
    """Same grant history in, same winner out - including rounds where the
    previous winner is no longer a candidate."""
    fast = RoundRobinArbiter()
    ref = ReferenceRoundRobinArbiter()
    for candidates in history:
        assert fast.pick(candidates) == ref.pick(candidates)
        assert fast._last == ref._last


@settings(max_examples=200, deadline=None)
@given(history=candidate_lists)
def test_pick_at_matches_pick(history):
    by_value = RoundRobinArbiter()
    by_index = RoundRobinArbiter()
    for candidates in history:
        winner = by_value.pick(candidates)
        assert candidates[by_index.pick_at(candidates)] == winner


def test_arbiter_rotates_fairly():
    arb = RoundRobinArbiter()
    grants = [arb.pick(["a", "b", "c"]) for _ in range(6)]
    assert grants == ["a", "b", "c", "a", "b", "c"]


def test_arbiter_winner_absent_restarts_at_first():
    """Regression for the stale-winner comment/behaviour mismatch: when
    the previous winner is not among the candidates, priority restarts at
    the first candidate in submission order, and that grant becomes the
    new rotation point."""
    for cls in (RoundRobinArbiter, ReferenceRoundRobinArbiter):
        arb = cls()
        assert arb.pick(["a", "b"]) == "a"
        # "a" disappeared: restart at the first candidate...
        assert arb.pick(["b", "c"]) == "b"
        # ...and "b" is now the rotation point, so "c" is next.
        assert arb.pick(["a", "b", "c"]) == "c"


def test_arbiter_empty_candidates():
    assert RoundRobinArbiter().pick([]) is None
    assert ReferenceRoundRobinArbiter().pick([]) is None


request_maps = st.lists(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=4),
        values=st.lists(st.sampled_from("xyz"), min_size=1, max_size=3,
                        unique=True),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=150, deadline=None)
@given(history=request_maps)
def test_two_phase_allocate_bypass_equivalence(history):
    """The single-requester bypass must leave every arbiter in the same
    state the full path would, across arbitrary request sequences that
    mix uncontended (bypassed) and contended rounds."""
    fast1, fast2 = ArbiterPool(), ArbiterPool()
    ref1 = ArbiterPool(ReferenceRoundRobinArbiter)
    ref2 = ArbiterPool(ReferenceRoundRobinArbiter)
    for requests in history:
        fast = two_phase_allocate(requests, fast1, fast2)
        ref = reference_two_phase_allocate(requests, ref1, ref2)
        assert fast == ref


# ---------------------------------------------------------------------------
# Batched-counter flush boundaries.
# ---------------------------------------------------------------------------
def _batched_stats(pending):
    """A Stats with one registered batcher holding ``pending`` deltas."""
    stats = Stats()
    cell = dict(pending)

    def flusher():
        for key, value in list(cell.items()):
            if value:
                stats.counters[key] += value
                cell[key] = 0

    stats.add_flusher(flusher)
    return stats, cell


def test_stats_counter_reads_flush_batchers():
    stats, cell = _batched_stats({"noc.link_flits": 7})
    assert stats.counter("noc.link_flits") == 7
    assert cell["noc.link_flits"] == 0


def test_stats_merge_flushes_both_sides():
    a, cell_a = _batched_stats({"k": 3})
    b, cell_b = _batched_stats({"k": 4})
    a.bump("k", 10)
    a.merge(b)
    assert a.counters["k"] == 17
    assert cell_a["k"] == 0 and cell_b["k"] == 0


def test_stats_reset_zeroes_batchers():
    stats, cell = _batched_stats({"k": 9})
    stats.reset()
    assert cell["k"] == 0
    assert stats.counter("k") == 0


def test_counter_rate_probe_sees_batched_deltas():
    """Interval probes must observe batched increments exactly as if each
    event had been bumped individually (sampler reads force a flush)."""
    stats, cell = _batched_stats({"k": 0})
    probe = counter_rate(stats, "k", interval=10)
    assert probe(10) == 0.0
    cell["k"] += 25
    assert probe(20) == 2.5
    cell["k"] += 5
    stats.bump("k", 5)
    assert probe(30) == 1.0


# ---------------------------------------------------------------------------
# Profiler self-measurement calibration (and fused-tick wrapping).
# ---------------------------------------------------------------------------
def test_profiler_calibration_reports_overhead():
    cfg = SystemConfig(n_cores=16).with_variant(Variant.COMPLETE)
    t = RequestReplyTraffic(cfg, 12.0, seed=2)
    profiler = KernelProfiler().attach(t.sim)
    t.run(500)
    profiler.detach()
    report = profiler.report()
    assert profiler.overhead_per_tick >= 0.0
    assert report["overhead_per_tick"] == profiler.overhead_per_tick
    assert report["overhead_seconds"] >= 0.0
    router_row = report["classes"]["Router"]
    assert router_row["ticks"] > 0
    assert router_row["seconds_corrected"] <= router_row["seconds"]
    assert "corrected" in profiler.table()


def test_profiler_wraps_fused_tick_and_restores_it():
    cfg = SystemConfig(n_cores=16).with_variant(Variant.BASELINE)
    t = RequestReplyTraffic(cfg, 12.0, seed=2)
    saved = [(slot.tick, slot.tick_wake) for slot in t.sim._slots]
    assert any(tw is not None for _, tw in saved)  # fused path in use
    profiler = KernelProfiler().attach(t.sim)
    t.run(400)
    profiler.detach()
    assert [(slot.tick, slot.tick_wake) for slot in t.sim._slots] == saved
    # the profiled ticks came through the fused wrapper
    assert profiler.report()["classes"]["Router"]["ticks"] > 0


def test_profiled_run_is_bit_identical():
    def run(profiled):
        cfg = SystemConfig(n_cores=16).with_variant(Variant.COMPLETE)
        t = RequestReplyTraffic(cfg, SATURATION_RATE, seed=1)
        profiler = KernelProfiler().attach(t.sim) if profiled else None
        t.run(1200)
        t.drain()
        if profiler is not None:
            profiler.detach()
        return snapshot(t.net.stats), t.cycle

    assert run(profiled=True) == run(profiled=False)
