"""A/B gate for the sharded engine: bit-identity with single-process runs.

The sharded engine (:mod:`repro.sim.shard`) must be a pure execution-
engine change: for any configuration, splitting the mesh across worker
processes yields the exact same statistics (counters, means, histograms)
and the exact same finish cycle as simulating the whole chip in one
process.  These tests pin that contract for the paper's main variants,
for both router pipelines (fastpath on/off), and through the public
``run_experiment`` / ``REPRO_SHARDS`` entry points.
"""

import os

import pytest

from repro.cpu.workloads import workload_by_name
from repro.sim.config import Variant, small_test_config
from repro.sim.shard import resolve_shards, run_sharded, shard_window
from repro.system import CmpSystem

WARMUP = 80
MEASURE = 250


def _snapshot(stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def _reference(config, workload="canneal"):
    system = CmpSystem(config, workload_by_name(workload))
    system.warmup(WARMUP)
    start = system.sim.cycle
    finish = system.run_instructions(MEASURE)
    return _snapshot(system.stats), start, finish, system.sim.cycle


@pytest.fixture(autouse=True)
def _no_engine_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)


@pytest.mark.parametrize("variant", [Variant.BASELINE, Variant.COMPLETE])
@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_run_bit_identical(variant, n_shards):
    config = small_test_config(16, variant, seed=3)
    ref_stats, start, finish, end = _reference(config)
    result = run_sharded(config, "canneal", WARMUP, MEASURE,
                         n_shards=n_shards, check=False)
    assert result.n_shards == n_shards
    assert result.start_cycle == start
    assert result.finish_cycle == finish
    assert result.end_cycle == end
    assert _snapshot(result.stats) == ref_stats


@pytest.mark.parametrize("variant",
                         [Variant.BASELINE, Variant.COMPLETE,
                          Variant.FRAGMENTED])
def test_sharded_run_bit_identical_reference_pipeline(variant):
    """The pre-overhaul (fastpath=False) pipeline shards identically."""
    from dataclasses import replace

    config = small_test_config(16, variant, seed=3)
    config = replace(config, noc=replace(config.noc, fastpath=False))
    ref_stats, start, finish, _end = _reference(config)
    result = run_sharded(config, "canneal", WARMUP, MEASURE,
                         n_shards=2, check=False)
    assert result.start_cycle == start
    assert result.finish_cycle == finish
    assert _snapshot(result.stats) == ref_stats


def test_sharded_run_with_invariant_monitor():
    """The shard-aware InvariantMonitor passes on every worker and the
    audited run stays bit-identical to the unaudited single process."""
    config = small_test_config(16, Variant.COMPLETE, seed=3)
    ref_stats, _start, finish, _end = _reference(config)
    result = run_sharded(config, "canneal", WARMUP, MEASURE,
                         n_shards=2, check=True, check_interval=500)
    assert result.finish_cycle == finish
    assert _snapshot(result.stats) == ref_stats


def test_run_experiment_with_shards_matches(monkeypatch):
    """REPRO_SHARDS flows through run_experiment to an identical RunResult."""
    from repro.harness import experiment
    from repro.harness.experiment import RunSpec, run_experiment

    spec = RunSpec(16, Variant.COMPLETE, "canneal", seed=3,
                   measure_instructions=MEASURE,
                   warmup_instructions=WARMUP)
    experiment._memo.clear()
    reference = run_experiment(spec)
    experiment._memo.clear()
    monkeypatch.setenv("REPRO_SHARDS", "2")
    sharded = run_experiment(spec)
    assert sharded.to_json() == reference.to_json()
    # bit-identical results share the memo: a repeat call is a hit
    assert run_experiment(spec) is sharded
    experiment._memo.clear()


def test_measure_only_run_matches():
    """warmup_instructions=0 skips warmup in both engines identically."""
    config = small_test_config(16, Variant.BASELINE, seed=5)
    system = CmpSystem(config, workload_by_name("fft"))
    start = system.sim.cycle
    finish = system.run_instructions(MEASURE)
    ref_stats = _snapshot(system.stats)
    result = run_sharded(config, "fft", 0, MEASURE, n_shards=2, check=False)
    assert result.start_cycle == start
    assert result.finish_cycle == finish
    assert _snapshot(result.stats) == ref_stats


def test_shard_window_respects_lookahead():
    assert shard_window(1) == 2
    assert shard_window(0) == 1
    assert shard_window(3) == 4
    assert shard_window(7) == 8
    assert shard_window(100) == 16  # capped by the drain check interval


def test_resolve_shards(monkeypatch):
    from repro.sim.config import SimConfig, SystemConfig

    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    config = SystemConfig(n_cores=16)
    assert resolve_shards(config) == 1
    monkeypatch.setenv("REPRO_SHARDS", "3")
    assert resolve_shards(config) == 3
    monkeypatch.setenv("REPRO_SHARDS", "nope")
    with pytest.raises(ValueError):
        resolve_shards(config)
    monkeypatch.setenv("REPRO_SHARDS", "9")
    with pytest.raises(ValueError):
        resolve_shards(config)  # 9 row bands do not fit a 4x4 mesh
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    explicit = SystemConfig(n_cores=16, sim=SimConfig(shards=2))
    assert resolve_shards(explicit) == 2
    with pytest.raises(ValueError):
        SystemConfig(n_cores=16, sim=SimConfig(shards=5))


def test_worker_error_propagates():
    """A failure inside one worker surfaces as the matching exception."""
    from repro.sim.kernel import DeadlockError

    config = small_test_config(16, Variant.BASELINE, seed=3)
    with pytest.raises(DeadlockError):
        # 10 cycles cannot drain even the warmup traffic; every shard
        # hits its deadline at the same barrier and the coordinator
        # re-raises the worker's DeadlockError.
        run_sharded(config, "canneal", 0, MEASURE, n_shards=2,
                    check=False, _max_measure_cycles=10)
