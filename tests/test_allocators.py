"""Round-robin arbiters and the two-phase separable allocator."""

from hypothesis import given, strategies as st

from repro.noc.allocators import ArbiterPool, RoundRobinArbiter, two_phase_allocate


def test_round_robin_rotates():
    arb = RoundRobinArbiter()
    grants = [arb.pick(["a", "b", "c"]) for _ in range(6)]
    assert grants == ["a", "b", "c", "a", "b", "c"]


def test_round_robin_single_candidate():
    arb = RoundRobinArbiter()
    assert arb.pick(["x"]) == "x"
    assert arb.pick(["x"]) == "x"
    assert arb.pick([]) is None


def test_round_robin_fairness_under_contention():
    arb = RoundRobinArbiter()
    wins = {"a": 0, "b": 0}
    for _ in range(100):
        wins[arb.pick(["a", "b"])] += 1
    assert wins["a"] == wins["b"] == 50


def test_arbiter_pool_is_per_resource():
    pool = ArbiterPool()
    assert pool.pick("r1", ["a", "b"]) == "a"
    assert pool.pick("r2", ["a", "b"]) == "a"  # independent pointer
    assert pool.pick("r1", ["a", "b"]) == "b"


def test_two_phase_grants_are_conflict_free():
    p1, p2 = ArbiterPool(), ArbiterPool()
    requests = {
        "in0": ["outA", "outB"],
        "in1": ["outA"],
        "in2": ["outB"],
    }
    grants = two_phase_allocate(requests, p1, p2)
    # each requester gets at most one resource; each resource one requester
    assert len(set(grants.values())) == len(grants)
    for requester, resource in grants.items():
        assert resource in requests[requester]


@given(st.dictionaries(
    st.integers(0, 9),
    st.lists(st.integers(0, 5), min_size=1, max_size=4, unique=True),
    max_size=8,
))
def test_two_phase_properties(requests):
    p1, p2 = ArbiterPool(), ArbiterPool()
    grants = two_phase_allocate(requests, p1, p2)
    # a resource is granted to at most one requester
    assert len(set(grants.values())) == len(grants)
    # every grant was requested
    for requester, resource in grants.items():
        assert resource in requests[requester]
    # every resource requested by exactly one proposer gets granted to it
    # (phase-2 has no competition): weaker liveness check - at least one
    # grant whenever there is any request
    if requests:
        assert grants


def test_two_phase_serves_everyone_over_time():
    """No starvation: repeated allocation grants every requester."""
    p1, p2 = ArbiterPool(), ArbiterPool()
    requests = {f"in{i}": ["out"] for i in range(4)}
    winners = set()
    for _ in range(8):
        grants = two_phase_allocate(requests, p1, p2)
        winners.update(grants)
    assert winners == set(requests)
