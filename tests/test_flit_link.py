"""Message segmentation and link timing."""

import pytest

from repro.noc.flit import Message, control_message, data_message
from repro.noc.link import CreditLink, FlitLink


def test_data_message_is_five_flits():
    """64B line + header at 16B flits = 5 flits (paper Table 4)."""
    msg = data_message(0, 1, 1, "L2_REPLY", flit_bytes=16, line_bytes=64)
    assert msg.n_flits == 5


def test_control_message_is_single_flit():
    msg = control_message(0, 1, 0, "GETS")
    assert msg.n_flits == 1
    flits = msg.flits()
    assert flits[0].is_head and flits[0].is_tail


def test_flit_segmentation_roles():
    msg = Message(0, 1, 1, 5, "X")
    flits = msg.flits()
    assert [f.is_head for f in flits] == [True, False, False, False, False]
    assert [f.is_tail for f in flits] == [False, False, False, False, True]
    assert [f.index for f in flits] == list(range(5))


def test_message_validation():
    with pytest.raises(ValueError):
        Message(0, 1, 2, 1, "bad-vn")
    with pytest.raises(ValueError):
        Message(0, 1, 0, 0, "no-flits")


def test_flit_link_timing():
    """ST at cycle c -> available at c + 1 + latency (5 cyc/hop total)."""
    link = FlitLink(latency=1)
    msg = Message(0, 1, 0, 1, "X")
    flit = msg.flits()[0]
    link.send(flit, 10)
    assert list(link.arrivals(10)) == []
    assert list(link.arrivals(11)) == []
    assert list(link.arrivals(12)) == [flit]
    assert list(link.arrivals(13)) == []


def test_flit_link_preserves_order():
    link = FlitLink()
    msg = Message(0, 1, 0, 3, "X")
    flits = msg.flits()
    for i, flit in enumerate(flits):
        link.send(flit, 10 + i)
    got = []
    for cycle in range(10, 16):
        got.extend(link.arrivals(cycle))
    assert got == flits


def test_link_watcher_counts():
    class Watcher:
        # The watcher contract: routers/NIs expose ``incoming`` plus a
        # ``kernel_wake`` slot (None until an activity kernel registers).
        incoming = 0
        kernel_wake = None

    link = FlitLink()
    link.watcher = Watcher()
    msg = Message(0, 1, 0, 2, "X")
    for flit in msg.flits():
        link.send(flit, 5)
    assert link.watcher.incoming == 2
    list(link.arrivals(7))
    assert link.watcher.incoming == 0


def test_credit_link_and_undo():
    link = CreditLink(latency=1)
    link.send_credit(1, 0, 4)
    link.send_undo((3, 0x40, 9), 4)
    credits = list(link.arrivals(6))
    assert len(credits) == 2
    assert credits[0].is_buffer_credit and credits[0].vn == 1
    assert not credits[1].is_buffer_credit
    assert credits[1].undo_key == (3, 0x40, 9)


def test_message_latency_accumulators():
    msg = Message(0, 1, 1, 1, "X")
    msg.enqueued_cycle = 10
    msg.injected_cycle = 13
    msg.queue_acc += 3
    msg.net_acc += 20
    assert msg.queueing_latency == 3
    assert msg.network_latency == 20
