"""Design-space sweep utilities."""

from repro.harness.sweeps import (
    SweepPoint,
    buffer_depth_sweep,
    load_sweep,
    mesh_scaling_sweep,
    render_sweep,
)
from repro.sim.config import Variant


def test_mesh_scaling_structure():
    points = mesh_scaling_sweep(sides=(2, 3), cycles=1500)
    assert [p.label for p in points] == ["4 cores", "9 cores"]
    for p in points:
        assert 0.0 <= p.circuit_success <= 1.0
        assert p.mean_reply_latency > 0


def test_load_sweep_latency_monotonicity():
    points = load_sweep(rates=(2.0, 60.0), cycles=2500,
                        variant=Variant.BASELINE)
    assert points[1].offered_load > points[0].offered_load
    assert points[1].mean_reply_latency > points[0].mean_reply_latency


def test_buffer_depth_helps_under_load():
    points = buffer_depth_sweep(depths=(2, 8), rate=40.0, cycles=2500)
    shallow, deep = points
    assert deep.mean_reply_latency <= shallow.mean_reply_latency * 1.05


def test_render_sweep():
    points = [SweepPoint("x", 0.5, 12.0, 3.0)]
    text = render_sweep(points, "title")
    assert "title" in text and "50.0%" in text and "12.0" in text
