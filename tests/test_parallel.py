"""Parallel experiment engine and the crash-safe shared result cache."""

import json
import multiprocessing
import os
import time

import pytest

from repro.harness import parallel
from repro.harness.cache import (
    SCHEMA_VERSION,
    CacheLockTimeout,
    FileLock,
    ResultCache,
)
from repro.harness.experiment import (
    RunSpec,
    _memo,
    default_workloads,
    run_experiment,
    run_matrix,
    scale,
)
from repro.sim.config import Variant

SMALL = dict(measure_instructions=250, warmup_instructions=80)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    """Isolate every test from ambient REPRO_* settings."""
    for var in ("REPRO_SCALE", "REPRO_FULL", "REPRO_CACHE", "REPRO_JOBS"):
        monkeypatch.delenv(var, raising=False)


# ---------------------------------------------------------------------------
# env-var validation (REPRO_JOBS / REPRO_SCALE / REPRO_FULL)


def test_resolve_jobs_env(monkeypatch):
    assert parallel.resolve_jobs() == 1
    assert parallel.resolve_jobs(default=0) == (os.cpu_count() or 1)
    assert parallel.resolve_jobs(3) == 3
    assert parallel.resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert parallel.resolve_jobs() == 5
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert parallel.resolve_jobs() == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        parallel.resolve_jobs()
    monkeypatch.setenv("REPRO_JOBS", "-2")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        parallel.resolve_jobs()
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        parallel.resolve_jobs(-1)


def test_scale_env_validation(monkeypatch):
    for bad in ("banana", "0", "-1", "inf", "nan"):
        monkeypatch.setenv("REPRO_SCALE", bad)
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale()
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scale() == 0.5
    monkeypatch.delenv("REPRO_SCALE")
    assert scale() == 1.0


def test_full_env_validation(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "maybe")
    with pytest.raises(ValueError, match="REPRO_FULL"):
        default_workloads()
    monkeypatch.setenv("REPRO_FULL", "YES")
    assert len(default_workloads()) == 22
    monkeypatch.setenv("REPRO_FULL", "off")
    assert len(default_workloads()) == 6


# ---------------------------------------------------------------------------
# generic engine behaviour (crash retry, timeout) via scripted workers


def _scripted_worker(payload):
    """Crash on first attempt if given a sentinel path, else double."""
    sentinel, value = payload
    if sentinel and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(17)  # simulate a segfaulting / OOM-killed worker
    return value * 2


def _always_crash(payload):
    os._exit(17)


def _sleep_forever(payload):
    time.sleep(60)
    return payload


def test_worker_crash_is_retried_once(tmp_path):
    sentinel = str(tmp_path / "crash.once")
    out = parallel.run_tasks(
        {"a": (sentinel, 1), "b": (None, 2)}, worker=_scripted_worker, jobs=2
    )
    assert out == {"a": 2, "b": 4}


def test_worker_crash_exhausts_retries():
    with pytest.raises(parallel.WorkerCrashError, match="died repeatedly"):
        parallel.run_tasks({"a": (None, 1)}, worker=_always_crash, jobs=1)


def test_per_run_timeout():
    started = time.monotonic()
    with pytest.raises(parallel.RunTimeoutError, match="timeout"):
        parallel.run_tasks(
            {"a": None}, worker=_sleep_forever, jobs=1, timeout=0.3
        )
    assert time.monotonic() - started < 30


def _kill_for_bad(payload):
    """Kill the worker process for the 'bad' key, succeed for the rest."""
    kind, path = payload
    if kind == "bad":
        os._exit(17)
    with open(path, "w") as f:
        f.write(kind)
    return kind


def test_pool_break_charges_only_running_task(tmp_path):
    """A poisonous task exhausts ITS retries; innocents are not charged.

    Regression: a broken pool used to charge an attempt to every
    still-pending task, so one configuration that kept killing its
    worker aborted runs that had never even started.
    """
    tasks = {
        "bad": ("bad", ""),
        "good-1": ("good-1", str(tmp_path / "good-1")),
        "good-2": ("good-2", str(tmp_path / "good-2")),
    }
    with pytest.raises(parallel.WorkerCrashError) as err:
        parallel.run_tasks(tasks, worker=_kill_for_bad, jobs=1,
                           crash_retries=0)
    # the error names the actual culprit, and only it
    assert "bad" in str(err.value)
    assert "good" not in str(err.value)
    # the innocent tasks were retried and ran to completion
    assert (tmp_path / "good-1").exists()
    assert (tmp_path / "good-2").exists()


def _maybe_sleep(payload):
    if payload == "sleep":
        time.sleep(60)
    return payload


def test_progress_counts_timeouts():
    """Progress/ETA counts terminal outcomes, timeouts included.

    Regression: the progress callback only fired on the success path
    and 'done' excluded timed-out runs, so a sweep with timeouts
    reported a stale count and a wrong ETA.
    """
    messages = []
    with pytest.raises(parallel.RunTimeoutError):
        parallel.run_tasks(
            {"quick": "quick", "slow": "sleep"},
            worker=_maybe_sleep, jobs=2, timeout=0.5, echo=messages.append,
        )
    # both runs reached a terminal state, and the progress line said so
    assert any(msg.startswith("[repro] 2/2") for msg in messages), messages


# ---------------------------------------------------------------------------
# serial/parallel result equality


def test_run_specs_matches_serial_and_seeds_memo():
    specs = [
        RunSpec(16, Variant.BASELINE, "water_spatial", seed=1, **SMALL),
        RunSpec(16, Variant.COMPLETE_NOACK, "water_spatial", seed=1, **SMALL),
    ]
    _memo.clear()
    serial = {s.scaled().key(): run_experiment(s) for s in specs}
    _memo.clear()
    results = parallel.run_specs(specs, jobs=2)
    assert set(results) == set(serial)
    for key, result in results.items():
        assert result.to_json() == serial[key].to_json()
    # the memo was seeded, so serial assembly code gets memo hits
    assert run_experiment(specs[0]) is results[specs[0].scaled().key()]


def test_run_specs_serial_fallback_seeds_memo(monkeypatch):
    """The single-pending-spec fallback seeds the memo like the pool path.

    Regression: the serial branch returned the runner's result without
    writing ``experiment._memo[key]`` itself, silently relying on the
    runner's internal memoisation, while the pool branch seeded the
    memo explicitly.  run_specs' documented memo contract must hold for
    any runner on both paths.
    """
    from repro.harness import experiment

    spec = RunSpec(16, Variant.BASELINE, "water_spatial", seed=1, **SMALL)
    key = spec.scaled().key()
    stub_result = experiment.RunResult(
        spec_key=key, n_cores=16, variant=Variant.BASELINE.value,
        workload="water_spatial", exec_cycles=123,
    )

    def stub_runner(s):
        return stub_result  # deliberately does NOT touch the memo

    monkeypatch.setattr(experiment, "run_experiment", stub_runner)
    _memo.clear()
    # one pending spec triggers the serial fallback even with jobs > 1
    results = parallel.run_specs([spec], jobs=4)
    assert results[key] is stub_result
    assert _memo.get(key) is stub_result
    _memo.clear()


def test_run_matrix_parallel_is_bit_identical(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.08")  # tiny quanta, tiny warmup
    workloads = ["water_spatial", "blackscholes"]
    variants = [Variant.BASELINE, Variant.COMPLETE_NOACK, Variant.COMPLETE]
    _memo.clear()
    serial = run_matrix(16, variants, workloads)
    _memo.clear()
    monkeypatch.setenv("REPRO_JOBS", "4")
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
    par = run_matrix(16, variants, workloads)
    for variant in variants:
        for workload in workloads:
            assert (par[variant][workload].to_json()
                    == serial[variant][workload].to_json()), (variant, workload)
    # the six specs landed in the shared disk cache with the right schema
    data = json.loads((tmp_path / "cache.json").read_text())
    assert data["schema"] == SCHEMA_VERSION
    assert len(data["entries"]) == 6


# ---------------------------------------------------------------------------
# crash-safe result cache


def test_cache_quarantines_corrupt_file(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{ definitely not json")
    cache = ResultCache(str(path))
    assert cache.load("k") is None
    assert not path.exists()  # moved aside, not retried forever
    quarantined = list(tmp_path.glob("cache.json.corrupt.*"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text() == "{ definitely not json"
    cache.store("k", {"x": 1})  # a fresh, valid file replaces it
    data = json.loads(path.read_text())
    assert data == {"schema": SCHEMA_VERSION, "entries": {"k": {"x": 1}}}


def test_cache_quarantines_unknown_schema(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"schema": 999, "entries": {"k": {}}}))
    cache = ResultCache(str(path))
    assert cache.load_all() == {}
    assert list(tmp_path.glob("cache.json.corrupt.*"))


def test_cache_reads_and_upgrades_legacy_layout(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"old-key": {"x": 1}}))
    cache = ResultCache(str(path))
    assert cache.load("old-key") == {"x": 1}
    cache.store("new-key", {"y": 2})
    data = json.loads(path.read_text())
    assert data["schema"] == SCHEMA_VERSION
    assert data["entries"] == {"old-key": {"x": 1}, "new-key": {"y": 2}}


def test_cache_merge_on_write(tmp_path):
    path = str(tmp_path / "cache.json")
    ResultCache(path).store("a", {"v": 1})
    ResultCache(path).store("b", {"v": 2})
    assert ResultCache(path).load_all() == {"a": {"v": 1}, "b": {"v": 2}}


def test_cache_drops_corrupt_entries_not_file(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps(
        {"schema": SCHEMA_VERSION,
         "entries": {"good": {"v": 1}, "bad": "not-a-dict"}}
    ))
    cache = ResultCache(str(path))
    assert cache.load_all() == {"good": {"v": 1}}
    assert path.exists()


def test_file_lock_times_out_then_breaks_stale(tmp_path):
    lock_path = str(tmp_path / "cache.json.lock")
    with FileLock(lock_path):
        contender = FileLock(lock_path, timeout=0.2, stale_seconds=60)
        with pytest.raises(CacheLockTimeout):
            contender.acquire()
    # a crashed writer's stale lock is broken instead of deadlocking
    open(lock_path, "w").close()
    os.utime(lock_path, (time.time() - 120, time.time() - 120))
    with FileLock(lock_path, timeout=5, stale_seconds=30):
        pass
    assert not os.path.exists(lock_path)


def _hammer(path, start, count):
    cache = ResultCache(path)
    for i in range(start, start + count):
        cache.store(f"key-{i}", {"value": i})


def test_cache_multiprocess_hammer(tmp_path):
    """>= 4 concurrent writers on one cache file lose nothing."""
    path = str(tmp_path / "cache.json")
    workers = [
        multiprocessing.Process(target=_hammer, args=(path, w * 20, 20))
        for w in range(5)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=120)
    assert all(proc.exitcode == 0 for proc in workers)
    entries = ResultCache(path).load_all()
    assert len(entries) == 100
    for i in range(100):
        assert entries[f"key-{i}"] == {"value": i}
    data = json.loads(open(path).read())  # never a torn file
    assert data["schema"] == SCHEMA_VERSION
    assert not list(tmp_path.glob("*.corrupt.*"))
