"""Router microarchitecture details: pipeline stages, claims, undo."""

import pytest

from repro.noc.flit import Message
from repro.noc.network import Network
from repro.noc.topology import Port
from repro.noc.vc import VcStage
from repro.sim.config import SystemConfig, Variant
from repro.sim.kernel import SimulationError


def make_net(variant=Variant.BASELINE, cores=16):
    return Network(SystemConfig(n_cores=cores).with_variant(variant))


def test_router_port_structure():
    net = make_net()
    corner = net.routers[0]
    middle = net.routers[5]
    assert set(corner.ports) == {Port.EAST, Port.SOUTH, Port.LOCAL}
    assert len(middle.ports) == 5
    for port in middle.ports:
        assert len(middle.inputs[port].vcs[0]) == 2
        assert len(middle.inputs[port].vcs[1]) == 2


def test_claim_path_is_exclusive_per_cycle():
    net = make_net()
    router = net.routers[5]
    assert router.claim_path(Port.NORTH, Port.SOUTH)
    assert not router.claim_path(Port.NORTH, Port.EAST)  # input taken
    assert not router.claim_path(Port.WEST, Port.SOUTH)  # output taken
    assert router.claim_path(Port.WEST, Port.EAST)


def test_vc_stage_progression():
    """Head flit: buffer+RC at t, VA t+1, SA t+2, ST t+3."""
    net = make_net()
    router = net.routers[5]
    msg = Message(5, 6, 0, 1, "REQ")
    flit = msg.flits()[0]
    flit.dst_vc = 0
    router.in_flit[Port.LOCAL].send(flit, 0)  # arrives at cycle 2
    router.tick(2)
    vc = router.vc(Port.LOCAL, 0, 0)
    assert vc.stage is VcStage.VA
    assert vc.route == Port.EAST  # route tables hold plain int ports
    router.tick(3)
    assert vc.stage is VcStage.ACTIVE
    assert vc.out_vc is not None
    router.tick(4)  # SA grant
    assert vc.granted_pending
    router.tick(5)  # ST
    assert not vc.buffer
    assert vc.stage is VcStage.IDLE
    # flit on the EAST link, arriving at neighbour at cycle 7
    arrivals = list(router.out_flit[Port.EAST].arrivals(7))
    assert arrivals == [flit]


def test_bufferless_vc_rejects_packet_flit():
    net = make_net(Variant.COMPLETE)
    router = net.routers[5]
    msg = Message(5, 6, 1, 1, "REPLY")
    flit = msg.flits()[0]
    flit.dst_vc = 1  # the bufferless circuit VC
    router.in_flit[Port.LOCAL].send(flit, 0)
    with pytest.raises(SimulationError):
        router.tick(2)


def test_circuit_flit_without_entry_is_an_error():
    net = make_net(Variant.COMPLETE)
    router = net.routers[5]
    msg = Message(5, 6, 1, 1, "REPLY")
    msg.circuit_key = (6, 0x40, msg.uid)
    flit = msg.flits()[0]
    flit.on_circuit = True
    router.in_flit[Port.LOCAL].send(flit, 0)
    with pytest.raises(SimulationError):
        router.tick(2)


def test_undo_credit_clears_entry_and_forwards():
    net = make_net(Variant.COMPLETE)
    router = net.routers[5]  # (1,1) in the 4x4 mesh
    from repro.circuits.table import CircuitEntry

    key = (4, 0x80, 1234)  # circuit toward node 4 = (0,1): WEST of node 5
    table = router.inputs[Port.EAST].circuit_table
    table.insert(CircuitEntry(key, Port.EAST, Port.WEST, built_cycle=0))
    # undo arrives on the EAST credit channel (from the failure router)
    router.in_credit[Port.EAST].send_undo(key, 0)
    router.tick(2)
    assert table.lookup(key, 2) is None
    # and is forwarded toward the circuit destination (WEST)
    forwarded = list(router.out_credit[Port.WEST].arrivals(4))
    assert len(forwarded) == 1 and forwarded[0].undo_key == key


def test_undo_stops_at_destination_router():
    net = make_net(Variant.COMPLETE)
    router = net.routers[5]
    from repro.circuits.table import CircuitEntry

    key = (5, 0x80, 99)  # destination IS this node -> out port LOCAL
    table = router.inputs[Port.EAST].circuit_table
    table.insert(CircuitEntry(key, Port.EAST, Port.LOCAL, built_cycle=0))
    router.in_credit[Port.EAST].send_undo(key, 0)
    router.tick(2)
    assert table.lookup(key, 2) is None
    assert router.out_credit[Port.LOCAL].in_flight() == 0


def test_ejection_port_has_effectively_infinite_credits():
    net = make_net()
    router = net.routers[5]
    local_vc = router.output_vc(Port.LOCAL, 0, 0)
    assert local_vc.credits > 1_000_000


def test_busy_vc_accounting_balances():
    net = make_net()
    chip_cycle = 0
    # inject a couple of messages through NIs and ensure counters return to 0
    for node, dest in ((0, 5), (3, 9), (15, 2)):
        msg = Message(node, dest, 0, 3, "REQ")
        net.interfaces[node].enqueue(msg, chip_cycle)
    for cycle in range(1, 300):
        net.tick(cycle)
    for router in net.routers:
        assert router._busy_vcs == 0
        for port, unit in router._input_units:
            assert unit.busy_count == 0
