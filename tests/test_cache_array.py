"""Cache arrays and tree pseudo-LRU replacement."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.cache import CacheArray, PseudoLruTree


class Line:
    def __init__(self, tag):
        self.tag = tag


def test_plru_requires_power_of_two():
    with pytest.raises(ValueError):
        PseudoLruTree(3)
    PseudoLruTree(1)
    PseudoLruTree(16)


def test_plru_victim_is_not_most_recent():
    plru = PseudoLruTree(4)
    for way in range(4):
        plru.touch(way)
    assert plru.victim() != 3  # way 3 was touched last


def test_plru_cycles_through_all_ways():
    plru = PseudoLruTree(4)
    seen = set()
    for _ in range(8):
        victim = plru.victim()
        seen.add(victim)
        plru.touch(victim)
    assert seen == {0, 1, 2, 3}


@given(st.integers(0, 3), st.integers(1, 4))
def test_plru_victim_never_equals_just_touched(way, _n):
    plru = PseudoLruTree(4)
    plru.touch(way)
    assert plru.victim() != way


@given(st.lists(st.integers(0, 15), min_size=1, max_size=64))
def test_plru_16way_victim_valid(touches):
    plru = PseudoLruTree(16)
    for way in touches:
        plru.touch(way)
    assert 0 <= plru.victim() < 16
    assert plru.victim() != touches[-1]


def test_cache_install_lookup_remove():
    cache = CacheArray(4, 2, 64)
    cache.install(0x100, Line(1))
    assert 0x100 in cache
    assert cache.lookup(0x100).tag == 1
    assert cache.peek(0x100).tag == 1
    assert cache.lookup(0x200) is None
    assert cache.remove(0x100).tag == 1
    assert 0x100 not in cache
    assert cache.remove(0x100) is None


def test_set_conflict_and_victim():
    cache = CacheArray(2, 2, 64)  # addresses 0, 128, 256 map to set 0
    cache.install(0, Line("a"))
    cache.install(128, Line("b"))
    assert not cache.has_free_way(256)
    victim = cache.choose_victim(256, lambda line: True)
    assert victim in (0, 128)
    cache.remove(victim)
    cache.install(256, Line("c"))
    assert cache.lookup(256).tag == "c"


def test_victim_respects_evictability():
    cache = CacheArray(2, 2, 64)
    cache.install(0, Line("busy"))
    cache.install(128, Line("free"))
    victim = cache.choose_victim(256, lambda line: line.tag != "busy")
    assert victim == 128
    none = cache.choose_victim(256, lambda line: False)
    assert none is None


def test_block_stride_spreads_interleaved_blocks():
    """An L2 bank receiving every 16th block must use all of its sets."""
    n_nodes = 16
    cache = CacheArray(64, 2, 64, block_stride=n_nodes)
    sets = {cache.set_index(block * 64)
            for block in range(0, 64 * n_nodes, n_nodes)}
    assert len(sets) == 64  # every set used, no aliasing


def test_without_stride_interleaved_blocks_alias():
    cache = CacheArray(64, 2, 64, block_stride=1)
    sets = {cache.set_index(block * 64)
            for block in range(0, 64 * 16, 16)}
    assert len(sets) == 4  # gcd(16, 64) aliasing - the bug the stride fixes


def test_plru_touch_on_lookup_changes_victim():
    cache = CacheArray(1, 4, 64)
    for i in range(4):
        cache.install(i * 64, Line(i))
    cache.lookup(0)  # make way of addr 0 most recent
    victim = cache.choose_victim(4 * 64, lambda line: True)
    assert victim != 0


@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_cache_never_exceeds_capacity(addrs):
    cache = CacheArray(8, 4, 64)
    for addr in addrs:
        addr *= 64
        if addr in cache:
            continue
        if not cache.has_free_way(addr):
            victim = cache.choose_victim(addr, lambda line: True)
            cache.remove(victim)
        cache.install(addr, Line(addr))
        assert cache.occupancy() <= 8 * 4
