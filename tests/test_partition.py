"""Partitioned-chip extension (the paper's section-5.5 usage model)."""

import pytest

from repro.cpu.workloads import workload_by_name
from repro.noc.topology import Mesh
from repro.partition import (
    Partition,
    build_partitioned_system,
    install_crossing_counter,
    quadrants,
    traffic_crosses_partitions,
)
from repro.sim.config import CacheConfig, SystemConfig, Variant


def small_partitioned(variant=Variant.COMPLETE_NOACK, seed=3):
    cache = CacheConfig(l1_size_bytes=2 * 1024, l2_bank_size_bytes=16 * 1024,
                        memory_latency_cycles=60)
    config = SystemConfig(n_cores=16, seed=seed, cache=cache).with_variant(variant)
    mesh = Mesh(4)
    parts = quadrants(mesh, [
        workload_by_name("blackscholes"),
        workload_by_name("fluidanimate"),
        workload_by_name("water_spatial"),
        workload_by_name("swaptions"),
    ])
    return build_partitioned_system(config, parts)


def test_quadrants_cover_mesh():
    mesh = Mesh(8)
    parts = quadrants(mesh, [workload_by_name("mix")] * 4)
    covered = sorted(n for p in parts for n in p.nodes(mesh))
    assert covered == list(range(64))


def test_quadrants_validation():
    with pytest.raises(ValueError):
        quadrants(Mesh(4), [workload_by_name("mix")] * 3)


def test_overlapping_partitions_rejected():
    config = SystemConfig(n_cores=16)
    wl = workload_by_name("mix")
    parts = [Partition(wl, 0, 0, 4, 4), Partition(wl, 0, 0, 1, 1)]
    with pytest.raises(ValueError):
        build_partitioned_system(config, parts)


def test_uncovered_nodes_rejected():
    config = SystemConfig(n_cores=16)
    wl = workload_by_name("mix")
    with pytest.raises(ValueError):
        build_partitioned_system(config, [Partition(wl, 0, 0, 2, 2)])


def test_homes_stay_inside_partition():
    system = small_partitioned()
    for index, nodes in enumerate(system.partition_nodes):
        node_set = set(nodes)
        for node in nodes:
            stream = system.tiles[node].core.stream
            samples = (list(stream.hot_lines())[:8]
                       + list(stream.mid_lines())[:8]
                       + list(stream.shared_lines())[:8])
            for addr in samples:
                assert system.home_of(addr) in node_set, (
                    f"addr {addr:#x} of partition {index} homed outside"
                )


def test_partitions_have_disjoint_shared_regions():
    system = small_partitioned()
    bases = {system.tiles[nodes[0]].core.stream.shared_base_line
             for nodes in system.partition_nodes}
    assert len(bases) == 4


def test_no_coherence_traffic_crosses_partitions():
    system = small_partitioned()
    install_crossing_counter(system)
    system.run_instructions(300, max_cycles=1_500_000)
    crossings, total = traffic_crosses_partitions(system)
    assert total > 0
    assert crossings == 0


def test_partitioned_chip_runs_circuits():
    system = small_partitioned()
    system.run_instructions(300, max_cycles=1_500_000)
    s = system.stats
    assert s.counter("circuit.outcome.on_circuit") > 0
    system.drain()
    assert system.network.live_circuit_entries(system.sim.cycle) == 0


# ---------------------------------------------------------------------------
# shard geometry for the parallel engine (property-based)


def _hypothesis():
    return pytest.importorskip("hypothesis")


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test extra
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

if HAVE_HYPOTHESIS:
    # (side, n_shards) with 1 <= n_shards <= side; sides up to 16 cover
    # ragged splits of non-power-of-two meshes (e.g. 6x6 into 4 bands).
    mesh_and_shards = st.integers(min_value=2, max_value=16).flatmap(
        lambda side: st.tuples(
            st.just(side), st.integers(min_value=1, max_value=side)
        )
    )


@needs_hypothesis
@settings(max_examples=200, deadline=None)
@given(mesh_and_shards)
def test_shard_bands_cover_every_tile_exactly_once(params):
    from repro.partition import shard_bands

    side, n_shards = params
    mesh = Mesh(side)
    bands = shard_bands(mesh, n_shards)
    assert len(bands) == n_shards
    covered = [node for band in bands for node in band]
    assert sorted(covered) == list(range(mesh.n_nodes))
    assert len(covered) == len(set(covered))
    # bands are contiguous whole rows, heights differing by at most one
    heights = [len(band) // side for band in bands]
    for band, height in zip(bands, heights):
        assert len(band) == height * side
    assert max(heights) - min(heights) <= 1
    assert all(h >= 1 for h in heights)
    # top-to-bottom assignment: rows appear in order
    rows = [y for band in bands for y in
            sorted({mesh.coords(node)[1] for node in band})]
    assert rows == list(range(side))


@needs_hypothesis
@settings(max_examples=200, deadline=None)
@given(mesh_and_shards)
def test_shard_assignment_is_total_and_consistent(params):
    from repro.partition import shard_assignment, shard_bands

    side, n_shards = params
    mesh = Mesh(side)
    assignment = shard_assignment(mesh, n_shards)
    assert len(assignment) == mesh.n_nodes
    assert all(0 <= shard < n_shards for shard in assignment)
    for index, band in enumerate(shard_bands(mesh, n_shards)):
        assert all(assignment[node] == index for node in band)


@needs_hypothesis
@settings(max_examples=200, deadline=None)
@given(mesh_and_shards)
def test_boundary_links_match_topology_adjacency(params):
    from repro.noc.topology import Port
    from repro.partition import boundary_links, shard_assignment

    side, n_shards = params
    mesh = Mesh(side)
    assignment = shard_assignment(mesh, n_shards)
    edges = boundary_links(mesh, assignment)
    # exactly the directed mesh edges whose endpoints differ in shard
    expected = []
    for node in range(mesh.n_nodes):
        for port in mesh.router_ports(node):
            if port is Port.LOCAL:
                continue
            neighbor = mesh.neighbor(node, port)
            if assignment[node] != assignment[neighbor]:
                expected.append((node, port, neighbor))
    assert edges == expected  # content AND canonical order
    # every edge is a real mesh adjacency and genuinely cross-shard
    for node, port, neighbor in edges:
        assert mesh.neighbor(node, port) == neighbor
        assert mesh.distance(node, neighbor) == 1
        assert assignment[node] != assignment[neighbor]
    # row bands: a band split yields exactly 2*side directed edges per
    # adjacent band pair (side links, each counted in both directions)
    assert len(edges) == 2 * side * (n_shards - 1)


def test_ragged_shard_split_6x6_into_4():
    """The ISSUE's canonical ragged case: 6 rows into 4 bands (2,2,1,1)."""
    from repro.partition import shard_assignment, shard_bands

    mesh = Mesh(6)
    bands = shard_bands(mesh, 4)
    assert [len(b) // 6 for b in bands] == [2, 2, 1, 1]
    assignment = shard_assignment(mesh, 4)
    assert sorted(assignment) == [0] * 12 + [1] * 12 + [2] * 6 + [3] * 6


def test_shard_bands_validation():
    from repro.partition import shard_bands

    with pytest.raises(ValueError):
        shard_bands(Mesh(4), 0)
    with pytest.raises(ValueError):
        shard_bands(Mesh(4), 5)
