"""Partitioned-chip extension (the paper's section-5.5 usage model)."""

import pytest

from repro.cpu.workloads import workload_by_name
from repro.noc.topology import Mesh
from repro.partition import (
    Partition,
    build_partitioned_system,
    install_crossing_counter,
    quadrants,
    traffic_crosses_partitions,
)
from repro.sim.config import CacheConfig, SystemConfig, Variant


def small_partitioned(variant=Variant.COMPLETE_NOACK, seed=3):
    cache = CacheConfig(l1_size_bytes=2 * 1024, l2_bank_size_bytes=16 * 1024,
                        memory_latency_cycles=60)
    config = SystemConfig(n_cores=16, seed=seed, cache=cache).with_variant(variant)
    mesh = Mesh(4)
    parts = quadrants(mesh, [
        workload_by_name("blackscholes"),
        workload_by_name("fluidanimate"),
        workload_by_name("water_spatial"),
        workload_by_name("swaptions"),
    ])
    return build_partitioned_system(config, parts)


def test_quadrants_cover_mesh():
    mesh = Mesh(8)
    parts = quadrants(mesh, [workload_by_name("mix")] * 4)
    covered = sorted(n for p in parts for n in p.nodes(mesh))
    assert covered == list(range(64))


def test_quadrants_validation():
    with pytest.raises(ValueError):
        quadrants(Mesh(4), [workload_by_name("mix")] * 3)


def test_overlapping_partitions_rejected():
    config = SystemConfig(n_cores=16)
    wl = workload_by_name("mix")
    parts = [Partition(wl, 0, 0, 4, 4), Partition(wl, 0, 0, 1, 1)]
    with pytest.raises(ValueError):
        build_partitioned_system(config, parts)


def test_uncovered_nodes_rejected():
    config = SystemConfig(n_cores=16)
    wl = workload_by_name("mix")
    with pytest.raises(ValueError):
        build_partitioned_system(config, [Partition(wl, 0, 0, 2, 2)])


def test_homes_stay_inside_partition():
    system = small_partitioned()
    for index, nodes in enumerate(system.partition_nodes):
        node_set = set(nodes)
        for node in nodes:
            stream = system.tiles[node].core.stream
            samples = (list(stream.hot_lines())[:8]
                       + list(stream.mid_lines())[:8]
                       + list(stream.shared_lines())[:8])
            for addr in samples:
                assert system.home_of(addr) in node_set, (
                    f"addr {addr:#x} of partition {index} homed outside"
                )


def test_partitions_have_disjoint_shared_regions():
    system = small_partitioned()
    bases = {system.tiles[nodes[0]].core.stream.shared_base_line
             for nodes in system.partition_nodes}
    assert len(bases) == 4


def test_no_coherence_traffic_crosses_partitions():
    system = small_partitioned()
    install_crossing_counter(system)
    system.run_instructions(300, max_cycles=1_500_000)
    crossings, total = traffic_crosses_partitions(system)
    assert total > 0
    assert crossings == 0


def test_partitioned_chip_runs_circuits():
    system = small_partitioned()
    system.run_instructions(300, max_cycles=1_500_000)
    s = system.stats
    assert s.counter("circuit.outcome.on_circuit") > 0
    system.drain()
    assert system.network.live_circuit_entries(system.sim.cycle) == 0
