"""Histogram statistics (latency distributions / percentiles)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, Stats


def test_empty_histogram():
    h = Histogram()
    assert h.percentile(50) == 0.0
    assert h.mean == 0.0
    assert h.max == 0.0


def test_percentiles_simple():
    h = Histogram()
    for v in range(1, 101):
        h.add(v)
    assert h.percentile(50) == 50
    assert h.percentile(95) == 95
    assert h.percentile(100) == 100
    assert h.percentile(0) == 1  # smallest observed value


def test_percentile_validation():
    h = Histogram()
    h.add(1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_mean_and_max():
    h = Histogram()
    for v in (2, 2, 8):
        h.add(v)
    assert h.mean == 4
    assert h.max == 8


def test_merge():
    a, b = Histogram(), Histogram()
    a.add(1)
    b.add(3)
    b.add(3)
    a.merge(b)
    assert a.count == 3
    assert a.percentile(100) == 3


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=400))
def test_percentile_bounds_and_monotonicity(values):
    h = Histogram()
    for v in values:
        h.add(v)
    assert min(values) <= h.percentile(1) <= h.percentile(50) \
        <= h.percentile(99) <= max(values)
    assert h.percentile(100) == max(values)


def test_stats_record_feeds_both():
    stats = Stats()
    for v in (10, 20, 30):
        stats.record("lat", v)
    assert stats.mean("lat") == 20
    assert stats.percentile("lat", 100) == 30
    assert stats.percentile("missing", 99) == 0.0


def test_stats_reset_clears_histograms():
    stats = Stats()
    stats.record("lat", 5)
    stats.reset()
    assert stats.percentile("lat", 50) == 0.0


def test_stats_merge_histograms():
    a, b = Stats(), Stats()
    a.record("lat", 1)
    b.record("lat", 9)
    a.merge(b)
    assert a.percentile("lat", 100) == 9


# ----------------------------------------------------------------------
# bucket_width: sub-unit values must not be silently collapsed.
# ----------------------------------------------------------------------
def test_default_bucket_width_truncates_to_integers():
    h = Histogram()
    h.add(1.9)
    assert h.percentile(100) == 1  # documented: bucket lower edge


def test_fractional_bucket_width_keeps_subunit_resolution():
    h = Histogram(bucket_width=0.25)
    for v in (0.1, 0.3, 0.6, 0.9):
        h.add(v)
    assert h.percentile(100) == 0.75  # bucket int(0.9/0.25)=3 -> 0.75
    assert h.percentile(1) == 0.0
    assert h.max == 0.75
    assert abs(h.mean - (0.0 + 0.25 + 0.5 + 0.75) / 4) < 1e-12


def test_bucket_width_validation_and_merge_mismatch():
    with pytest.raises(ValueError):
        Histogram(bucket_width=0)
    with pytest.raises(ValueError):
        Histogram(bucket_width=-1)
    a, b = Histogram(), Histogram(bucket_width=0.5)
    b.add(1)
    with pytest.raises(ValueError, match="bucket width"):
        a.merge(b)


def test_wide_buckets_coarsen_explicitly():
    h = Histogram(bucket_width=10)
    for v in (1, 9, 11, 19):
        h.add(v)
    assert h.percentile(50) == 0  # both 1 and 9 land in bucket 0
    assert h.percentile(100) == 10
