"""Dimension-order routing and the request/reply path-matching property."""

from hypothesis import given, strategies as st

from repro.noc.routing import path_routers, route_xy, route_yx
from repro.noc.topology import Mesh, Port


def test_xy_goes_horizontal_first():
    mesh = Mesh(4)
    assert route_xy(mesh, 0, 15) is Port.EAST
    assert route_xy(mesh, 3, 15) is Port.SOUTH
    assert route_xy(mesh, 15, 15) is Port.LOCAL


def test_yx_goes_vertical_first():
    mesh = Mesh(4)
    assert route_yx(mesh, 0, 15) is Port.SOUTH
    assert route_yx(mesh, 12, 15) is Port.EAST


@given(st.integers(2, 8), st.data())
def test_paths_reach_destination(side, data):
    mesh = Mesh(side)
    src = data.draw(st.integers(0, mesh.n_nodes - 1))
    dest = data.draw(st.integers(0, mesh.n_nodes - 1))
    for vn in (0, 1):
        path = path_routers(mesh, vn, src, dest)
        assert path[0] == src and path[-1] == dest
        assert len(path) == mesh.distance(src, dest) + 1


@given(st.integers(2, 8), st.data())
def test_request_and_reply_traverse_same_routers(side, data):
    """The key property of section 4.1: XY there == reversed YX back."""
    mesh = Mesh(side)
    src = data.draw(st.integers(0, mesh.n_nodes - 1))
    dest = data.draw(st.integers(0, mesh.n_nodes - 1))
    request_path = path_routers(mesh, 0, src, dest)
    reply_path = path_routers(mesh, 1, dest, src)
    assert request_path == list(reversed(reply_path))


@given(st.integers(2, 8), st.data())
def test_dor_paths_are_minimal_and_loop_free(side, data):
    mesh = Mesh(side)
    src = data.draw(st.integers(0, mesh.n_nodes - 1))
    dest = data.draw(st.integers(0, mesh.n_nodes - 1))
    for vn in (0, 1):
        path = path_routers(mesh, vn, src, dest)
        assert len(set(path)) == len(path)  # no router visited twice
