"""Invariant monitor: silent on clean runs, loud on corrupted state."""

import pytest

from repro.circuits.table import CircuitEntry
from repro.noc.network import Network
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.sim.kernel import Simulator
from repro.validate import (
    ALL_CHECKS,
    InvariantMonitor,
    InvariantViolation,
    run_clean,
    run_system_check,
)


def _traffic(variant=Variant.COMPLETE_NOACK, rate=12.0, seed=3):
    config = SystemConfig(n_cores=16, seed=seed).with_variant(variant)
    return RequestReplyTraffic(config, rate, seed=seed)


@pytest.mark.parametrize(
    "variant",
    [Variant.BASELINE, Variant.COMPLETE_NOACK, Variant.SLACKDELAY1_NOACK],
    ids=lambda v: v.value,
)
def test_clean_run_has_zero_violations(variant):
    report = run_clean(variant, cycles=1500, interval=100)
    assert report.ok
    assert report.violations == 0
    assert report.checks_run >= 10
    assert report.requests_sent > 0
    assert report.replies_received > 0


def test_violation_carries_structure():
    err = InvariantViolation(
        "credit_conservation", "off by one", cycle=123,
        location="router3.EAST.vn1.vc0", details={"expected": 4},
    )
    assert err.check == "credit_conservation"
    assert err.cycle == 123
    assert err.location == "router3.EAST.vn1.vc0"
    assert err.details == {"expected": 4}
    assert err.report is None
    text = str(err)
    assert "[credit_conservation]" in text
    assert "router3.EAST.vn1.vc0" in text
    assert "(cycle 123)" in text


def test_monitor_interval_gating():
    traffic = _traffic()
    monitor = InvariantMonitor(traffic.net, interval=500)
    traffic.run(50)
    monitor(traffic.cycle)  # 50 % 500 != 0: skipped
    assert monitor.checks_run == 0
    monitor.check_now(traffic.cycle)
    assert monitor.checks_run == 1
    assert monitor.violations == 0


def test_attach_runs_checks_from_simulator_watchdog():
    net = Network(SystemConfig(n_cores=16))
    sim = Simulator()
    monitor = InvariantMonitor(net, interval=100)
    assert monitor.attach(sim) is monitor
    sim.run(301)
    assert monitor.checks_run >= 3
    assert monitor.violations == 0


def test_unknown_check_name_rejected():
    net = Network(SystemConfig(n_cores=16))
    with pytest.raises(ValueError):
        InvariantMonitor(net, checks=("flit_conservation", "bogus"))
    # every advertised check resolves to a method
    monitor = InvariantMonitor(net, checks=ALL_CHECKS)
    for check in ALL_CHECKS:
        assert callable(getattr(monitor, f"check_{check}"))


def test_flit_conservation_detects_counter_skew():
    traffic = _traffic(Variant.BASELINE)
    traffic.run(300)
    monitor = InvariantMonitor(traffic.net, interval=1)
    monitor.check_now(traffic.cycle)  # clean before corruption
    traffic.net.stats.bump("noc.flits_injected", 3)
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_now(traffic.cycle)
    err = exc_info.value
    assert err.check == "flit_conservation"
    assert err.cycle == traffic.cycle
    assert monitor.violations == 1
    # forensics attached a structured crash report to the exception
    assert err.report is not None
    assert err.report.data["check"] == "flit_conservation"


def test_circuit_lifecycle_detects_planted_entry():
    traffic = _traffic(Variant.COMPLETE, rate=10.0)
    traffic.run(400)
    net = traffic.net
    table = None
    for router in net.routers:
        for port, unit in router._input_units:
            if unit.circuit_table is not None:
                table = unit.circuit_table
                in_port, node = port, router.node
                break
        if table is not None:
            break
    assert table is not None
    bogus_key = (99, 0xDEAD, 10 ** 9)
    out_port = next(
        p for p in net.routers[node].ports if p is not in_port
    )
    table.entries[bogus_key] = CircuitEntry(
        key=bogus_key, in_port=in_port, out_port=out_port,
        built_cycle=traffic.cycle,
    )
    monitor = InvariantMonitor(net, interval=1)
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_now(traffic.cycle)
    assert exc_info.value.check == "circuit_lifecycle"


def test_credit_conservation_detects_leaked_credit():
    traffic = _traffic(Variant.BASELINE)
    traffic.run(300)
    monitor = InvariantMonitor(traffic.net, interval=1)
    monitor.check_now(traffic.cycle)
    bufferless = traffic.net.policy.bufferless_vcs()
    from repro.noc.topology import Port

    out_vc = next(
        vc
        for router in traffic.net.routers
        for port in router.ports
        if port is not Port.LOCAL and router.out_flit[port] is not None
        for vn_row in router.outputs[port].vcs
        for vc in vn_row
        if (vc.vn, vc.index) not in bufferless and vc.credits > 0
    )
    out_vc.credits -= 1
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_now(traffic.cycle)
    assert exc_info.value.check == "credit_conservation"
    assert "credit" in str(exc_info.value)


def test_system_level_run_including_coherence_checks():
    monitor = run_system_check(
        Variant.COMPLETE_NOACK, workload="canneal", instructions=150,
        interval=250,
    )
    assert monitor.violations == 0
    assert monitor.checks_run > 0
