"""A/B equivalence of the activity-driven kernel vs. forced always-tick.

The kernel refactor's contract is *bit-identical* behaviour: skipping
sleeping components and fast-forwarding globally-quiet gaps must produce
exactly the same Stats snapshots and finish cycles as ticking every
component on every cycle (``Simulator.set_always_tick``).  These tests
pin that contract at three levels:

* scripted ClockedV2 components against the raw :class:`Simulator`
  (wake/sleep bookkeeping, scheduled wakeups, external pokes,
  fast-forward accounting, watchdog interaction);
* the synthetic traffic driver over a full network, for the variants the
  kernel benchmark sweeps (BASELINE, COMPLETE, COMPLETE_NOACK), plus a
  hypothesis property test over randomized short workloads;
* a full CMP system (cores + MESI + NoC) run to completion both ways.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Variant, build_system, workload_by_name
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, small_test_config
from repro.sim.kernel import DeadlockError, ProgressWatchdog, Simulator

VARIANTS = [Variant.BASELINE, Variant.COMPLETE, Variant.COMPLETE_NOACK]


def snapshot(stats):
    """Exact value of every counter, mean and histogram."""
    return (
        dict(stats.counters),
        {key: (m.total, m.count) for key, m in stats.means.items()},
        {key: (dict(h.buckets), h.count) for key, h in stats.histograms.items()},
    )


# ---------------------------------------------------------------------------
# Scripted components against the raw kernel.
# ---------------------------------------------------------------------------
class Pulser:
    """Ticks once every ``period`` cycles via scheduled wakeups."""

    def __init__(self, period):
        self.period = period
        self.ticks = []
        self.kernel_wake = None

    def tick(self, cycle):
        self.ticks.append(cycle)

    def next_wake(self, cycle):
        return cycle + self.period


class Sleeper:
    """Sleeps indefinitely; only an external poke can wake it."""

    def __init__(self):
        self.ticks = []
        self.kernel_wake = None

    def tick(self, cycle):
        self.ticks.append(cycle)

    def next_wake(self, cycle):
        return None


class PlainCounter:
    """A legacy Clocked component: no next_wake, never sleeps."""

    def __init__(self):
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


def test_scheduled_wakeups_fire_exactly():
    sim = Simulator()
    p = Pulser(5)
    sim.add(p)
    sim.run(21)
    assert p.ticks == [0, 5, 10, 15, 20]
    assert sim.ticks_run == 5
    assert sim.cycles_skipped == 21 - 5
    assert sim.skip_ratio() == pytest.approx(1 - 5 / 21)


def test_always_tick_runs_every_cycle():
    sim = Simulator()
    p = Pulser(5)
    sim.add(p)
    sim.set_always_tick(True)
    sim.run(10)
    assert p.ticks == list(range(10))
    assert sim.cycles_skipped == 0
    assert sim.skip_ratio() == 0.0


def test_plain_clocked_component_never_sleeps():
    sim = Simulator()
    c = PlainCounter()
    sim.add(c)
    sim.run(6)
    assert c.ticks == list(range(6))
    assert sim.cycles_skipped == 0


def test_awake_plain_component_blocks_fast_forward():
    sim = Simulator()
    p = Pulser(10)
    c = PlainCounter()
    sim.add(p)
    sim.add(c)
    sim.run(12)
    # the plain component keeps at least one slot awake every cycle, so
    # the clock may never jump, but the pulser still sleeps in between
    assert c.ticks == list(range(12))
    assert p.ticks == [0, 10]
    assert sim.cycles_skipped == 0


def test_external_wake_poke():
    sim = Simulator()
    s = Sleeper()
    sim.add(s)
    sim.run(3)
    assert s.ticks == [0]  # slept after its first tick
    s.kernel_wake(7)
    sim.run(7)  # clock is at 3; advance through cycle 9
    assert s.ticks == [0, 7]
    assert sim.cycle == 10


def test_wake_poke_in_the_past_clamps_to_now():
    sim = Simulator()
    s = Sleeper()
    sim.add(s)
    sim.run(5)
    s.kernel_wake(2)  # already in the past: wake as soon as possible
    sim.run(1)
    assert s.ticks == [0, 5]


def test_earlier_poke_overrides_later_schedule():
    sim = Simulator()
    s = Sleeper()
    sim.add(s)
    sim.run(1)
    s.kernel_wake(9)
    s.kernel_wake(4)
    sim.run(9)
    # woken at 4 by the earlier poke; the stale cycle-9 heap entry then
    # delivers a spurious (harmless, tick-is-a-no-op) wakeup at 9.  The
    # contract only promises ticks are never *missed*.
    assert s.ticks == [0, 4, 9]


def test_sleeping_slots_reports_schedule():
    sim = Simulator()
    p = Pulser(50)
    s = Sleeper()
    sim.add(p)
    sim.add(s)
    sim.run(1)
    assert sim.sleeping() == [p, s]
    assert sim.sleeping_slots() == [(p, 50), (s, None)]


def test_set_always_tick_off_rearms_activity_tracking():
    sim = Simulator()
    p = Pulser(4)
    sim.add(p)
    sim.set_always_tick(True)
    sim.run(3)
    sim.set_always_tick(False)
    sim.run(9)  # through cycle 11
    # re-armed at cycle 3: ticks at 3, then back on the every-4 schedule
    assert p.ticks == [0, 1, 2, 3, 7, 11]
    assert sim.cycles_skipped > 0


def test_watchdog_without_next_due_disables_fast_forward():
    sim = Simulator()
    p = Pulser(10)
    sim.add(p)
    calls = []
    sim.add_watchdog(calls.append)
    sim.run(20)
    assert calls == list(range(20))
    assert sim.cycles_skipped == 0
    assert p.ticks == [0, 10]  # the component itself still sleeps


def test_remove_watchdog_restores_fast_forward():
    sim = Simulator()
    p = Pulser(10)
    sim.add(p)
    calls = []
    hook = calls.append
    sim.add_watchdog(hook)
    sim.run(5)
    sim.remove_watchdog(hook)
    sim.run(15)
    assert calls == list(range(5))
    assert sim.cycles_skipped > 0


def test_progress_watchdog_stalls_at_identical_cycle():
    class ModuloWorker:
        """Observable progress only on multiples of ``period``."""

        def __init__(self, period):
            self.period = period
            self.work = 0
            self.kernel_wake = None

        def tick(self, cycle):
            if cycle % self.period == 0:
                self.work += 1

        def next_wake(self, cycle):
            return cycle + self.period - cycle % self.period

    def stall_cycle(always):
        sim = Simulator()
        w = ModuloWorker(50)
        sim.add(w)
        if always:
            sim.set_always_tick(True)
        sim.add_watchdog(ProgressWatchdog(lambda: w.work, window=10))
        with pytest.raises(DeadlockError) as exc:
            sim.run(100)
        return exc.value.cycle, exc.value.last_progress_cycle

    assert stall_cycle(always=True) == stall_cycle(always=False)


def test_run_until_deadline_clamp_with_sleepers():
    sim = Simulator()
    p = Pulser(100)
    sim.add(p)
    with pytest.raises(DeadlockError):
        sim.run_until(lambda: False, max_cycles=30, check_interval=1000)
    assert sim.cycle == 30  # fast-forward never overshoots the deadline


def test_run_until_finish_cycle_matches_always_tick():
    def finish(always):
        sim = Simulator()
        p = Pulser(7)
        sim.add(p)
        if always:
            sim.set_always_tick(True)
        return sim.run_until(lambda: len(p.ticks) >= 3, max_cycles=1000)

    assert finish(always=True) == finish(always=False)


# ---------------------------------------------------------------------------
# Traffic driver over a full network.
# ---------------------------------------------------------------------------
def traffic_run(variant, rate, cycles, always, seed=1, n_cores=16):
    cfg = SystemConfig(n_cores=n_cores).with_variant(variant)
    t = RequestReplyTraffic(cfg, rate, seed=seed)
    if always:
        t.sim.set_always_tick(True)
    t.run(cycles)
    t.drain()
    return (
        snapshot(t.net.stats),
        t.cycle,
        t.requests_sent,
        t.replies_received,
        tuple(t.reply_latencies),
    )


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
@pytest.mark.parametrize("rate", [1.0, 24.0])
def test_traffic_bit_identical(variant, rate):
    always = traffic_run(variant, rate, 3000, always=True)
    activity = traffic_run(variant, rate, 3000, always=False)
    assert activity == always


def test_activity_kernel_actually_skips_work():
    cfg = SystemConfig(n_cores=16).with_variant(Variant.COMPLETE)
    t = RequestReplyTraffic(cfg, 1.0, seed=1)
    t.run(3000)
    t.drain()
    assert t.sim.skip_ratio() > 0.5
    assert t.sim.cycles_skipped > 0


@settings(max_examples=10, deadline=None)
@given(
    variant=st.sampled_from(VARIANTS),
    rate=st.sampled_from([0.25, 2.0, 9.0, 30.0]),
    seed=st.integers(min_value=0, max_value=2**16),
    cycles=st.integers(min_value=200, max_value=1500),
)
def test_property_randomized_workloads_match(variant, rate, seed, cycles):
    always = traffic_run(variant, rate, cycles, always=True, seed=seed)
    activity = traffic_run(variant, rate, cycles, always=False, seed=seed)
    assert activity == always


# ---------------------------------------------------------------------------
# Full CMP system (cores + MESI + NoC + circuits).
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
def test_full_system_bit_identical(variant):
    def run(always):
        cfg = small_test_config(16, variant, seed=3)
        system = build_system(cfg, workload_by_name("fluidanimate"))
        if always:
            system.sim.set_always_tick(True)
        cycles = system.run_instructions(200, max_cycles=1_500_000)
        system.drain()
        return snapshot(system.stats), cycles, system.sim.cycle

    assert run(always=False) == run(always=True)
