"""Area and energy models (Table 6 / Fig. 8 machinery)."""

import pytest

from repro.power.area import area_savings, router_area
from repro.power.energy import network_energy
from repro.sim.config import SystemConfig, Variant
from repro.sim.stats import Stats


def cfg(variant, cores=16):
    return SystemConfig(n_cores=cores).with_variant(variant)


def test_baseline_router_is_buffer_dominated():
    model = router_area(cfg(Variant.BASELINE))
    assert model.buffers / model.total > 0.5
    assert model.circuit_storage == 0


def test_fragmented_increases_area():
    for cores in (16, 64):
        saving = area_savings(cfg(Variant.FRAGMENTED, cores))
        assert saving < -0.15  # paper: about -19 %


def test_complete_decreases_area():
    for cores, low, high in ((16, 0.04, 0.09), (64, 0.03, 0.08)):
        saving = area_savings(cfg(Variant.COMPLETE, cores))
        assert low < saving < high  # paper: +6.21 % / +5.77 %


def test_timed_saves_less_than_untimed():
    for cores in (16, 64):
        complete = area_savings(cfg(Variant.COMPLETE, cores))
        timed = area_savings(cfg(Variant.TIMED_NOACK, cores))
        assert 0 < timed < complete  # timers eat into the buffer savings


def test_savings_shrink_with_chip_size():
    """Wider destination ids at 64 cores cost more circuit storage."""
    assert area_savings(cfg(Variant.COMPLETE, 64)) < area_savings(
        cfg(Variant.COMPLETE, 16)
    )
    assert area_savings(cfg(Variant.TIMED_NOACK, 64)) < area_savings(
        cfg(Variant.TIMED_NOACK, 16)
    )


def test_table6_ordering_matches_paper():
    order = [
        area_savings(cfg(Variant.COMPLETE, 16)),
        area_savings(cfg(Variant.TIMED_NOACK, 16)),
        area_savings(cfg(Variant.FRAGMENTED, 16)),
    ]
    assert order[0] > order[1] > 0 > order[2]


def test_ideal_has_no_circuit_storage_model():
    model = router_area(cfg(Variant.IDEAL))
    assert model.circuit_storage == 0  # excluded, as in the paper


def test_dynamic_energy_scales_with_events():
    stats = Stats()
    config = cfg(Variant.BASELINE)
    zero = network_energy(config, stats, cycles=1000)
    stats.bump("noc.link_flits", 100)
    stats.bump("noc.buffer_writes", 100)
    more = network_energy(config, stats, cycles=1000)
    assert more.dynamic > zero.dynamic
    assert more.static == zero.static


def test_static_energy_scales_with_cycles_and_area():
    stats = Stats()
    short = network_energy(cfg(Variant.BASELINE), stats, cycles=1000)
    long = network_energy(cfg(Variant.BASELINE), stats, cycles=2000)
    assert long.static == pytest.approx(2 * short.static)
    frag = network_energy(cfg(Variant.FRAGMENTED), stats, cycles=1000)
    complete = network_energy(cfg(Variant.COMPLETE), stats, cycles=1000)
    assert frag.static > short.static > complete.static


def test_circuit_traffic_is_cheaper_per_flit():
    """The same flits moved via circuits (no buffer ops, no allocators)
    must cost less dynamic energy than packet-switched movement."""
    config = cfg(Variant.COMPLETE)
    packet = Stats()
    packet.bump("noc.xbar_traversals", 100)
    packet.bump("noc.link_flits", 100)
    packet.bump("noc.buffer_writes", 100)
    packet.bump("noc.buffer_reads", 100)
    packet.bump("noc.sa_grants", 100)
    packet.bump("noc.credits_sent", 100)
    circuit = Stats()
    circuit.bump("noc.xbar_traversals", 100)
    circuit.bump("noc.link_flits", 100)
    assert (network_energy(config, circuit, 0).dynamic
            < network_energy(config, packet, 0).dynamic)


def test_energy_breakdown_dict():
    model = network_energy(cfg(Variant.BASELINE), Stats(), cycles=10)
    d = model.as_dict()
    assert set(d) == {"dynamic", "static", "total", "cycles"}
    assert d["total"] == d["dynamic"] + d["static"]
