"""Configuration validation and variant expansion."""

import pytest

from repro.sim.config import (
    CacheConfig,
    CircuitConfig,
    CircuitMode,
    SystemConfig,
    Variant,
    small_test_config,
    variant_config,
)


def test_default_matches_paper_table2_and_4():
    cfg = SystemConfig()
    assert cfg.cache.l1_size_bytes == 32 * 1024
    assert cfg.cache.l1_assoc == 4
    assert cfg.cache.l1_hit_cycles == 2
    assert cfg.cache.l2_bank_size_bytes == 1024 * 1024
    assert cfg.cache.l2_assoc == 16
    assert cfg.cache.l2_hit_cycles == 7
    assert cfg.cache.memory_latency_cycles == 160
    assert cfg.cache.num_memory_controllers == 4
    assert cfg.noc.vcs_per_vn == (2, 2)
    assert cfg.noc.buffer_depth_flits == 5
    assert cfg.noc.flit_bytes == 16
    assert cfg.noc.packet_hop_cycles == 5
    assert cfg.noc.circuit_hop_cycles == 2


def test_derived_cache_geometry():
    cache = CacheConfig()
    assert cache.l1_sets * cache.l1_assoc * cache.line_bytes == 32 * 1024
    assert cache.l2_bank_sets * cache.l2_assoc * cache.line_bytes == 1024 * 1024


def test_mesh_side_requires_square():
    assert SystemConfig(n_cores=16).mesh_side == 4
    assert SystemConfig(n_cores=64).mesh_side == 8
    with pytest.raises(ValueError):
        SystemConfig(n_cores=12)


def test_every_variant_expands():
    for variant in Variant:
        circuit = variant_config(variant)
        cfg = SystemConfig(n_cores=16).with_variant(variant)
        assert cfg.circuit == circuit


def test_fragmented_grows_reply_vn():
    cfg = SystemConfig(n_cores=16).with_variant(Variant.FRAGMENTED)
    assert cfg.noc.vcs_per_vn == (2, 3)
    assert cfg.circuit.max_circuits_per_input == 2


def test_complete_keeps_two_reply_vcs():
    cfg = SystemConfig(n_cores=16).with_variant(Variant.COMPLETE)
    assert cfg.noc.vcs_per_vn == (2, 2)
    assert cfg.circuit.max_circuits_per_input == 5


def test_invalid_circuit_combinations_rejected():
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.NONE, no_ack=True)
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.FRAGMENTED, timed=True)
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.FRAGMENTED, no_ack=True)
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.COMPLETE, reuse=True, timed=True)
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.COMPLETE, timed=True, allow_delay=True)
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.COMPLETE, timed=True, postponed=True,
                      postpone_per_hop=1, slack_per_hop=2)
    with pytest.raises(ValueError):
        CircuitConfig(mode=CircuitMode.COMPLETE, timed=True, postponed=True)


def test_timed_variants_have_expected_knobs():
    slack = variant_config(Variant.SLACK2_NOACK)
    assert slack.timed and slack.slack_per_hop == 2 and not slack.allow_delay
    delay = variant_config(Variant.SLACKDELAY1_NOACK)
    assert delay.allow_delay and delay.slack_per_hop == 1
    post = variant_config(Variant.POSTPONED2_NOACK)
    assert post.postponed and post.postpone_per_hop == 2


def test_small_test_config_shrinks_caches_only():
    cfg = small_test_config(16, Variant.COMPLETE)
    assert cfg.cache.l1_size_bytes < 32 * 1024
    assert cfg.noc.buffer_depth_flits == 5
    assert cfg.circuit.mode is CircuitMode.COMPLETE


def test_with_circuit_replaces_policy():
    cfg = SystemConfig(n_cores=16)
    new = cfg.with_circuit(CircuitConfig(mode=CircuitMode.COMPLETE))
    assert new.circuit.mode is CircuitMode.COMPLETE
    assert cfg.circuit.mode is CircuitMode.NONE
