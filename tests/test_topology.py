"""Mesh topology and port geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import Mesh, Port, memory_controller_nodes, opposite


def test_coords_roundtrip():
    mesh = Mesh(4)
    for node in range(16):
        x, y = mesh.coords(node)
        assert mesh.node_at(x, y) == node


def test_neighbor_directions():
    mesh = Mesh(4)
    assert mesh.neighbor(5, Port.EAST) == 6
    assert mesh.neighbor(5, Port.WEST) == 4
    assert mesh.neighbor(5, Port.NORTH) == 1
    assert mesh.neighbor(5, Port.SOUTH) == 9


def test_corner_ports():
    mesh = Mesh(4)
    assert set(mesh.router_ports(0)) == {Port.EAST, Port.SOUTH, Port.LOCAL}
    assert set(mesh.router_ports(15)) == {Port.WEST, Port.NORTH, Port.LOCAL}
    # interior router has all five
    assert len(mesh.router_ports(5)) == 5


def test_opposite_is_involution():
    for port in Port:
        assert opposite(opposite(port)) is port
    assert opposite(Port.LOCAL) is Port.LOCAL


@given(st.integers(2, 8), st.data())
def test_neighbor_symmetry(side, data):
    mesh = Mesh(side)
    node = data.draw(st.integers(0, mesh.n_nodes - 1))
    for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
        if mesh.has_neighbor(node, port):
            other = mesh.neighbor(node, port)
            assert mesh.neighbor(other, opposite(port)) == node


@given(st.integers(2, 8), st.data())
def test_distance_is_metric(side, data):
    mesh = Mesh(side)
    a = data.draw(st.integers(0, mesh.n_nodes - 1))
    b = data.draw(st.integers(0, mesh.n_nodes - 1))
    c = data.draw(st.integers(0, mesh.n_nodes - 1))
    assert mesh.distance(a, b) == mesh.distance(b, a)
    assert (mesh.distance(a, b) == 0) == (a == b)
    assert mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c)


def test_memory_controller_placement_on_edges():
    for side in (4, 8):
        mesh = Mesh(side)
        nodes = memory_controller_nodes(mesh, 4)
        assert len(nodes) == 4
        assert len(set(nodes)) == 4
        edge = set(mesh.edge_nodes())
        assert all(node in edge for node in nodes)


def test_memory_controller_other_counts():
    mesh = Mesh(4)
    assert len(memory_controller_nodes(mesh, 1)) == 1
    assert len(memory_controller_nodes(mesh, 2)) == 2
    eight = memory_controller_nodes(mesh, 8)
    assert len(eight) == len(set(eight)) == 8


def test_invalid_mesh():
    with pytest.raises(ValueError):
        Mesh(0)
    mesh = Mesh(2)
    with pytest.raises(ValueError):
        mesh.node_at(2, 0)
