"""System assembly details not covered elsewhere."""

import pytest

from repro import SystemConfig, Variant, build_system, workload_by_name
from repro.noc.topology import Mesh, memory_controller_nodes
from repro.sim.config import small_test_config
from repro.sim.kernel import DeadlockError


def test_memory_controllers_placed_on_designated_tiles():
    system = build_system(SystemConfig(n_cores=16))
    with_mc = [tile.node for tile in system.tiles if tile.mc is not None]
    assert sorted(with_mc) == sorted(system.mc_nodes)
    assert len(with_mc) == 4


def test_home_mapping_interleaves_all_banks():
    system = build_system(SystemConfig(n_cores=16))
    homes = {system.home_of(block * 64) for block in range(64)}
    assert homes == set(range(16))


def test_mc_mapping_targets_only_mc_nodes():
    system = build_system(SystemConfig(n_cores=16))
    for block in range(64):
        assert system.mc_of(block * 64) in system.mc_nodes


def test_system_without_workload_has_no_cores():
    system = build_system(SystemConfig(n_cores=16))
    assert system.cores == []
    system.run_cycles(50)  # idles without deadlock


def test_run_instructions_accumulates():
    cfg = small_test_config(16, Variant.BASELINE)
    system = build_system(cfg, workload_by_name("water_spatial"))
    first = system.run_instructions(100, max_cycles=500_000)
    second = system.run_instructions(100, max_cycles=500_000)
    assert second > first
    assert system.total_retired() >= 16 * 200


def test_run_instructions_timeout_raises():
    cfg = small_test_config(16, Variant.BASELINE)
    system = build_system(cfg, workload_by_name("canneal"))
    with pytest.raises(DeadlockError):
        system.run_instructions(10_000_000, max_cycles=2_000)


def test_64_core_system_builds_and_steps():
    system = build_system(SystemConfig(n_cores=64),
                          workload_by_name("water_spatial"))
    assert len(system.tiles) == 64
    assert len(system.mc_nodes) == 4
    system.functional_prewarm()
    system.run_cycles(300)
    assert system.total_retired() > 0
