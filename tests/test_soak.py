"""Soak tests: sustained mixed traffic with invariant checking."""

import pytest

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant

SOAK_VARIANTS = [
    Variant.BASELINE,
    Variant.FRAGMENTED,
    Variant.COMPLETE_NOACK,
    Variant.REUSE_NOACK,
    Variant.SLACKDELAY1_NOACK,
    Variant.POSTPONED1_NOACK,
    Variant.IDEAL,
]


@pytest.mark.parametrize("variant", SOAK_VARIANTS)
def test_soak_sustained_load(variant):
    """Thousands of transactions at moderate load: nothing lost, no state
    leaks, credits restored, latency accounting consistent."""
    config = SystemConfig(n_cores=16).with_variant(variant)
    traffic = RequestReplyTraffic(config, requests_per_node_per_kcycle=15.0,
                                  seed=11)
    traffic.run(6_000)
    traffic.drain()
    assert traffic.requests_sent > 800
    assert traffic.replies_received == traffic.requests_sent
    net = traffic.net
    assert net.in_flight() == 0
    assert net.live_circuit_entries(traffic.cycle) == 0
    # accounting: every latency sample is positive and bounded
    assert all(0 < lat < 5_000 for lat in traffic.reply_latencies)
    # stats self-consistency: every injected flit is delivered exactly
    # once, except scrounger relays which re-inject their 5 flits for the
    # second leg (delivery is only counted at the final destination)
    s = net.stats
    relayed = 5 * s.counter("circuit.scrounger_relays")
    assert (s.counter("noc.flits_injected")
            == s.counter("noc.flits_delivered") + relayed)
    # outcome conservation when circuits are in play
    if variant is not Variant.BASELINE:
        total = s.counter("circuit.replies_total")
        assert total == traffic.replies_received


def test_soak_buffers_and_vcs_fully_recovered():
    config = SystemConfig(n_cores=16).with_variant(Variant.FRAGMENTED)
    traffic = RequestReplyTraffic(config, requests_per_node_per_kcycle=25.0,
                                  seed=5)
    traffic.run(5_000)
    traffic.drain()
    for router in traffic.net.routers:
        assert router.buffered_flits() == 0
        assert router._busy_vcs == 0
        for _port, unit in router._input_units:
            assert unit.busy_count == 0
            for vn_row in unit.vcs:
                for vc in vn_row:
                    assert vc.stage.value == "I"
                    assert not vc.granted_pending


@pytest.mark.parametrize("variant", SOAK_VARIANTS)
def test_soak_invariant_checked(variant):
    """Sustained load with the invariant monitor auditing mid-flight
    state every 250 cycles: zero violations during the run and after
    drain (no false positives on any variant)."""
    from repro.validate import InvariantMonitor

    config = SystemConfig(n_cores=16).with_variant(variant)
    traffic = RequestReplyTraffic(config, requests_per_node_per_kcycle=15.0,
                                  seed=13)
    monitor = InvariantMonitor(traffic.net, interval=250)
    for _ in range(4_000):
        traffic.run(1)
        monitor(traffic.cycle)
    traffic.drain()
    monitor.check_now(traffic.cycle)
    assert monitor.violations == 0
    assert monitor.checks_run >= 16
    assert traffic.replies_received == traffic.requests_sent
