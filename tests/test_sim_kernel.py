"""Simulation kernel, RNG and statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.kernel import DeadlockError, ProgressWatchdog, Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import MeanStat, Stats, mean_and_stderr, weighted_fractions


class Counter:
    def __init__(self):
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


def test_simulator_ticks_in_order():
    sim = Simulator()
    a, b = Counter(), Counter()
    sim.add(a)
    sim.add(b)
    sim.run(3)
    assert a.ticks == b.ticks == [0, 1, 2]
    assert sim.cycle == 3


def test_run_until_completes():
    sim = Simulator()
    c = Counter()
    sim.add(c)
    end = sim.run_until(lambda: len(c.ticks) >= 100, max_cycles=1000,
                        check_interval=7)
    assert len(c.ticks) >= 100
    assert end == sim.cycle


def test_run_until_deadline():
    sim = Simulator()
    with pytest.raises(DeadlockError):
        sim.run_until(lambda: False, max_cycles=50)


def test_run_until_never_steps_past_deadline():
    # regression: check_interval (64) > max_cycles used to overshoot by
    # up to check_interval - 1 cycles before the deadline re-check
    sim = Simulator()
    with pytest.raises(DeadlockError):
        sim.run_until(lambda: False, max_cycles=50, check_interval=64)
    assert sim.cycle == 50


def test_run_until_no_success_on_borrowed_cycles():
    # regression: completion after max_cycles but within the overshot
    # chunk used to be reported as success instead of DeadlockError
    sim = Simulator()
    counter = Counter()
    sim.add(counter)
    with pytest.raises(DeadlockError):
        sim.run_until(lambda: len(counter.ticks) >= 60, max_cycles=50,
                      check_interval=64)
    assert sim.cycle == 50


def test_run_until_done_at_entry_runs_nothing():
    sim = Simulator()
    assert sim.run_until(lambda: True, max_cycles=10) == 0
    assert sim.cycle == 0


def test_progress_watchdog_detects_stall():
    sim = Simulator()
    watchdog = ProgressWatchdog(lambda: 42, window=10)
    sim.add_watchdog(watchdog)
    with pytest.raises(DeadlockError):
        sim.run(100)


def test_progress_watchdog_allows_progress():
    sim = Simulator()
    c = Counter()
    sim.add(c)
    sim.add_watchdog(ProgressWatchdog(lambda: len(c.ticks), window=10))
    sim.run(100)  # should not raise


def test_rng_streams_are_deterministic_and_independent():
    a = DeterministicRng(7).stream("x")
    b = DeterministicRng(7).stream("x")
    c = DeterministicRng(7).stream("y")
    d = DeterministicRng(8).stream("x")
    seq_a = [a.random() for _ in range(5)]
    assert seq_a == [b.random() for _ in range(5)]
    assert seq_a != [c.random() for _ in range(5)]
    assert seq_a != [d.random() for _ in range(5)]


def test_stats_counters_and_means():
    stats = Stats()
    stats.bump("a")
    stats.bump("a", 2)
    stats.observe("lat", 10)
    stats.observe("lat", 20)
    assert stats.counter("a") == 3
    assert stats.mean("lat") == 15
    assert stats.counter("missing") == 0
    assert stats.mean("missing") == 0.0


def test_stats_merge_and_reset():
    a, b = Stats(), Stats()
    a.bump("x")
    b.bump("x", 4)
    b.observe("m", 8)
    a.merge(b)
    assert a.counter("x") == 5
    assert a.mean("m") == 8
    a.reset()
    assert a.counter("x") == 0


def test_stats_share_and_prefix():
    stats = Stats()
    stats.bump("p.a", 3)
    stats.bump("p.b", 1)
    stats.bump("q.c", 6)
    assert stats.share(["p.a"], ["p.a", "p.b"]) == 0.75
    assert stats.counters_with_prefix("p.") == {"p.a": 3, "p.b": 1}


def test_weighted_fractions():
    assert weighted_fractions({"a": 1, "b": 3}) == {"a": 0.25, "b": 0.75}
    assert weighted_fractions({"a": 0}) == {"a": 0.0}


@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
def test_mean_and_stderr_properties(values):
    mean, err = mean_and_stderr(values)
    assert min(values) - 1e-6 <= mean <= max(values) + 1e-6
    assert err >= 0


def test_mean_stat_merge():
    a, b = MeanStat(), MeanStat()
    a.add(10)
    b.add(20)
    b.add(30)
    a.merge(b)
    assert a.mean == 20
    assert a.count == 3
