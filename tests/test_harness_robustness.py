"""Harness robustness: timeouts without SIGALRM, cache edge cases, and
graceful degradation of failing runs in a sweep."""

import json
import logging
import os
import time
import types

import pytest

from repro.harness import experiment, parallel
from repro.harness.cache import FileLock, ResultCache
from repro.harness.experiment import RunResult, RunSpec, run_matrix
from repro.sim.config import Variant
from repro.sim.kernel import DeadlockError


# -- parallel._invoke ---------------------------------------------------

def test_invoke_without_sigalrm_falls_back_to_plain_call(monkeypatch):
    # platforms without SIGALRM (e.g. Windows) run untimed, not crash
    monkeypatch.setattr(parallel, "signal", types.SimpleNamespace())
    assert parallel._invoke(lambda x: x + 1, 41, timeout=5.0) == 42


def test_invoke_without_timeout_runs_directly():
    assert parallel._invoke(lambda x: x * 2, 21, timeout=None) == 42
    assert parallel._invoke(lambda x: x * 2, 21, timeout=0) == 42


def test_invoke_timeout_raises_in_process():
    def slow(_payload):
        time.sleep(5.0)

    before = time.monotonic()
    with pytest.raises(parallel.RunTimeoutError):
        parallel._invoke(slow, None, timeout=0.05)
    assert time.monotonic() - before < 2.0


# -- cache edge cases ---------------------------------------------------

def test_filelock_release_survives_missing_lock_file(tmp_path):
    lock = FileLock(str(tmp_path / "x.lock"))
    lock.acquire()
    os.unlink(lock.path)  # an impatient operator removed it by hand
    lock.release()  # must not raise
    assert lock._fd is None
    lock.release()  # and is idempotent


def test_quarantine_losing_the_move_race_stays_quiet(
    tmp_path, monkeypatch, caplog
):
    path = str(tmp_path / "cache.json")
    with open(path, "w") as fh:
        fh.write("{ torn json")
    cache = ResultCache(path)

    def lost_race(src, dst):
        raise OSError("moved by a concurrent process")

    monkeypatch.setattr("repro.harness.cache.os.replace", lost_race)
    with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
        assert cache.load_all() == {}
    assert not any(
        "quarantined" in record.getMessage() for record in caplog.records
    )


def test_quarantine_logs_a_warning_when_it_wins(tmp_path, caplog):
    path = str(tmp_path / "cache.json")
    with open(path, "w") as fh:
        fh.write("{ torn json")
    with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
        assert ResultCache(path).load_all() == {}
    assert any(
        "quarantined" in record.getMessage() for record in caplog.records
    )
    assert not os.path.exists(path)


def test_quarantine_growth_is_capped(tmp_path, caplog):
    """A crash-looping writer cannot fill the disk with .corrupt files.

    Only the newest ``QUARANTINE_KEEP`` quarantined copies survive; the
    rest are pruned with a warning naming each victim.
    """
    from repro.harness.cache import QUARANTINE_KEEP

    path = str(tmp_path / "cache.json")
    cache = ResultCache(path)
    rounds = QUARANTINE_KEEP + 4
    for round_no in range(rounds):
        with open(path, "w") as fh:
            fh.write(f"{{ torn json #{round_no}")
        with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
            assert cache.load_all() == {}
    corrupt = sorted(
        name for name in os.listdir(tmp_path)
        if name.startswith("cache.json.corrupt.")
    )
    assert len(corrupt) == QUARANTINE_KEEP
    assert any(
        "pruned" in record.getMessage() for record in caplog.records
    )


# -- graceful degradation of failing runs -------------------------------

@pytest.fixture
def fake_runs(monkeypatch, tmp_path):
    """run_experiment stub: 'streamcluster' deadlocks, the rest succeed."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_FAILFAST", raising=False)
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path))
    monkeypatch.setattr(experiment, "_memo", {})

    def fake_run(spec):
        if spec.workload == "streamcluster":
            raise DeadlockError("synthetic deadlock", cycle=123)
        return RunResult(
            spec_key=spec.key(), n_cores=spec.n_cores,
            variant=spec.variant.value, workload=spec.workload,
            exec_cycles=1000,
        )

    monkeypatch.setattr(experiment, "run_experiment", fake_run)
    return tmp_path


def test_run_matrix_degrades_failing_runs(fake_runs):
    out = run_matrix(16, [Variant.BASELINE], ["canneal", "streamcluster"])
    good = out[Variant.BASELINE]["canneal"]
    bad = out[Variant.BASELINE]["streamcluster"]
    assert not good.failed
    assert good.exec_cycles == 1000
    assert bad.failed
    assert bad.error_kind == "DeadlockError"
    assert "synthetic deadlock" in bad.error
    assert bad.exec_cycles == 0
    assert bad.crash_report is not None
    assert os.path.exists(bad.crash_report)
    with open(bad.crash_report) as fh:
        assert json.load(fh)["kind"] == "DeadlockError"


def test_run_matrix_fail_fast_restores_raising(fake_runs):
    with pytest.raises(DeadlockError):
        run_matrix(16, [Variant.BASELINE], ["canneal", "streamcluster"],
                   fail_fast=True)


def test_failure_results_are_not_disk_cached(fake_runs, monkeypatch):
    cache_path = str(fake_runs / "results.json")
    monkeypatch.setenv("REPRO_CACHE", cache_path)
    spec = RunSpec(16, Variant.BASELINE, "streamcluster", 1)
    result = experiment.run_experiment_safe(spec)
    assert result.failed
    stored = ResultCache(cache_path).load_all()
    assert spec.scaled().key() not in stored


def test_failure_results_survive_json_roundtrip(fake_runs):
    spec = RunSpec(16, Variant.BASELINE, "streamcluster", 1)
    result = experiment.run_experiment_safe(spec)
    clone = RunResult.from_json(result.to_json())
    assert clone.failed
    assert clone.error_kind == "DeadlockError"
