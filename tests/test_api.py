"""The public facade (:mod:`repro.api`): both modes, shims, streaming.

In-process mode runs real (tiny) simulations; daemon mode boots a real
:class:`repro.service.Daemon` on a unix socket and asserts the facade
returns bit-identical results and seeds the local memo either way.
"""

import os

import pytest

from repro import api
from repro.harness import experiment
from repro.harness.experiment import RunResult, RunSpec
from repro.sim.config import Variant
from repro.telemetry import TelemetryConfig

SMALL = dict(measure_instructions=250, warmup_instructions=80)


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    for var in ("REPRO_SCALE", "REPRO_FULL", "REPRO_JOBS", "REPRO_CACHE",
                "REPRO_CACHE_SHARDS", "REPRO_SERVICE",
                "REPRO_SERVICE_WORKERS", "REPRO_FAILFAST"):
        monkeypatch.delenv(var, raising=False)
    saved = dict(experiment._memo)
    experiment._memo.clear()
    yield
    experiment._memo.clear()
    experiment._memo.update(saved)


@pytest.fixture
def daemon_address(tmp_path, monkeypatch):
    """A live daemon, selected through REPRO_SERVICE like production."""
    from repro.service import Daemon

    env = dict(os.environ, REPRO_CACHE=str(tmp_path / "store") + os.sep)
    daemon = Daemon(str(tmp_path / "repro.sock"), workers=2, env=env)
    daemon.start()
    monkeypatch.setenv("REPRO_SERVICE", daemon.address)
    yield daemon.address
    daemon.shutdown()


def _spec(seed=1, variant=Variant.BASELINE, **extra):
    return RunSpec(16, variant, "canneal", seed, **SMALL, **extra)


# ----------------------------------------------------------------------
# In-process mode.
# ----------------------------------------------------------------------

def test_submit_in_process_matches_direct_run():
    spec = _spec()
    handle = api.submit([spec])
    assert len(handle) == 1
    [status] = api.status(handle)
    assert status["state"] == "done"
    [result] = api.results(handle)
    assert result.to_json() == experiment.run_experiment(spec).to_json()


def test_run_one_shot():
    spec = _spec(seed=2)
    assert api.run(spec).to_json() == \
        experiment.run_experiment(spec).to_json()


def test_stream_metrics_in_process_replays_buffered_series(tmp_path):
    telemetry = TelemetryConfig(
        metrics=True, spans=False, profile=False, interval=50,
        out_dir=str(tmp_path / "telemetry"),
        trace_dir=str(tmp_path / "trace"),
    )
    handle = api.submit([_spec(telemetry=telemetry)])
    samples = list(api.stream_metrics(handle))
    assert samples, "observed run produced no samples"
    key = handle.keys[0]
    cycles = [cycle for _, cycle, _ in samples]
    assert all(k == key for k, _, _ in samples)
    assert cycles == sorted(cycles)
    assert all(isinstance(values, dict) and values
               for _, _, values in samples)


def test_plain_specs_produce_no_stream():
    handle = api.submit([_spec(seed=3)])
    assert list(api.stream_metrics(handle)) == []


def test_safe_runner_scales_exactly_once(monkeypatch):
    # Regression: run_experiment_safe used to scale the spec and then
    # call run_experiment, which scales again -- so with REPRO_SCALE set
    # the in-process facade simulated a double-shrunk run and diverged
    # from the daemon (which scales exactly once, at submit).
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    spec = RunSpec(16, Variant.BASELINE, "canneal", 7)
    result = experiment.run_experiment_safe(spec)
    assert result.spec_key == spec.scaled().key()
    assert result.spec_key != spec.scaled().scaled().key()  # not idempotent
    assert result.to_json() == experiment.run_experiment(spec).to_json()


def test_map_tasks_runs_locally():
    done = api.map_tasks({"a": 2, "b": 5}, worker=_triple, jobs=None)
    assert done == {"a": 6, "b": 15}


def _triple(payload):
    return payload * 3


# ----------------------------------------------------------------------
# Sweep helpers and deprecation shims.
# ----------------------------------------------------------------------

def _fake_runner(calls):
    def runner(spec):
        spec = spec.scaled()
        key = spec.key()
        calls.append(key)
        result = experiment._memo.get(key)
        if result is None:
            result = RunResult(
                spec_key=key, n_cores=spec.n_cores,
                variant=spec.variant.value, workload=spec.workload,
                exec_cycles=1000 + len(calls),
            )
            experiment._memo[key] = result
        return result
    return runner


def test_run_matrix_assembles_variant_by_workload(monkeypatch):
    calls = []
    runner = _fake_runner(calls)
    monkeypatch.setattr(experiment, "run_experiment_safe", runner)
    monkeypatch.setattr(experiment, "run_experiment", runner)
    out = api.run_matrix(16, [Variant.BASELINE, Variant.COMPLETE],
                         ["canneal", "fft"], seed=1)
    assert set(out) == {Variant.BASELINE, Variant.COMPLETE}
    assert set(out[Variant.BASELINE]) == {"canneal", "fft"}
    for variant, per in out.items():
        for workload, result in per.items():
            assert result.variant == variant.value
            assert result.workload == workload


def test_legacy_entry_points_warn_and_forward(monkeypatch):
    sentinel = object()
    monkeypatch.setattr(api, "run_matrix",
                        lambda *args, **kwargs: sentinel)
    with pytest.warns(DeprecationWarning, match="repro.api.run_matrix"):
        assert experiment.run_matrix(16, [], []) is sentinel
    monkeypatch.setattr(api, "compare_variants",
                        lambda *args, **kwargs: sentinel)
    with pytest.warns(DeprecationWarning,
                      match="repro.api.compare_variants"):
        assert experiment.compare_variants("canneal") is sentinel


def test_legacy_imports_still_resolve():
    import repro
    from repro.harness import compare_variants, run_matrix

    assert repro.run_matrix is api.run_matrix
    assert repro.compare_variants is api.compare_variants
    assert run_matrix is not None and compare_variants is not None


# ----------------------------------------------------------------------
# Daemon mode: the same five calls against a live service.
# ----------------------------------------------------------------------

def test_daemon_mode_results_bit_identical_and_memo_seeded(daemon_address):
    spec = _spec(seed=4)
    assert api.service_address() == daemon_address
    handle = api.submit([spec])
    assert "daemon" in repr(handle)
    [result] = api.results(handle, timeout=300.0)
    assert result.spec_key in experiment._memo  # assembly reuses it
    # Reference computed afterwards, in-process, with a clean memo.
    del experiment._memo[result.spec_key]
    assert result.to_json() == experiment.run_experiment(spec).to_json()


def test_daemon_mode_stream_metrics(daemon_address, tmp_path):
    telemetry = TelemetryConfig(
        metrics=True, spans=False, profile=False, interval=50,
        out_dir=str(tmp_path / "telemetry"),
        trace_dir=str(tmp_path / "trace"),
    )
    handle = api.submit([_spec(telemetry=telemetry)])
    samples = list(api.stream_metrics(handle))
    assert samples
    assert all(key == handle.keys[0] for key, _, _ in samples)


def test_daemon_mode_run_matrix_parity(daemon_address, monkeypatch):
    # run_matrix uses the default quanta; shrink them for the test.  The
    # daemon pre-scales at submit with this same environment, so the
    # keys (and results) agree with the local reference run.
    monkeypatch.setenv("REPRO_SCALE", "0.02")
    out = api.run_matrix(16, [Variant.BASELINE], ["canneal"], seed=5)
    daemon_result = out[Variant.BASELINE]["canneal"]
    experiment._memo.clear()
    reference = experiment.run_experiment(
        RunSpec(16, Variant.BASELINE, "canneal", 5))
    assert daemon_result.to_json() == reference.to_json()
