"""Deadlock forensics: wait graphs, crash reports, watchdog hooks."""

import json
import os

import pytest

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.sim.kernel import DeadlockError, ProgressWatchdog, Simulator
from repro.validate import (
    FaultInjector,
    FaultKind,
    build_wait_graph,
    crash_report,
    find_cycle,
    save_crash_report,
)


def test_find_cycle_on_synthetic_graph():
    edges = [
        {"src": "a", "dst": "b", "reason": ""},
        {"src": "b", "dst": "c", "reason": ""},
        {"src": "c", "dst": "a", "reason": ""},
        {"src": "x", "dst": "a", "reason": ""},
    ]
    cycle = find_cycle(edges)
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {"a", "b", "c"}


def test_find_cycle_none_on_dag():
    edges = [
        {"src": "a", "dst": "b", "reason": ""},
        {"src": "b", "dst": "c", "reason": ""},
        {"src": "a", "dst": "c", "reason": ""},
    ]
    assert find_cycle(edges) is None
    assert find_cycle([]) is None


def test_crash_report_structure_and_json_roundtrip(tmp_path):
    config = SystemConfig(n_cores=16, seed=3).with_variant(
        Variant.COMPLETE_NOACK
    )
    traffic = RequestReplyTraffic(config, 12.0, seed=3)
    traffic.run(400)
    report = crash_report(traffic.net, cycle=traffic.cycle)
    data = report.to_json()
    assert data["kind"] == "snapshot"
    assert data["cycle"] == traffic.cycle
    for key in ("counters", "blocked_vcs", "wait_edges", "ni_queues",
                "mesh_dump", "in_flight"):
        assert key in data
    text = report.ascii()
    assert "crash report" in text
    assert "in flight" in text

    path = save_crash_report(report, str(tmp_path), "weird/name:1")
    assert os.path.basename(path) == "weird_name_1.json"
    with open(path) as fh:
        loaded = json.load(fh)
    assert loaded["cycle"] == traffic.cycle
    assert loaded["kind"] == "snapshot"


def test_save_crash_report_accepts_plain_dict(tmp_path):
    path = save_crash_report({"kind": "X", "error": "y"}, str(tmp_path), "m")
    with open(path) as fh:
        assert json.load(fh) == {"kind": "X", "error": "y"}


def test_wait_graph_under_backpressure():
    config = SystemConfig(n_cores=16, seed=5)
    traffic = RequestReplyTraffic(config, 15.0, seed=5)
    injector = FaultInjector(traffic.net, FaultKind.STUCK_PORT, seed=5,
                             at_cycle=200)
    for _ in range(2500):
        traffic.run(1)
        injector.tick(traffic.cycle)
    assert injector.applied
    edges = build_wait_graph(traffic.net)
    assert edges, "expected blocked-VC edges behind a stuck port"
    for edge in edges:
        assert edge["src"].startswith("router")
        assert edge["reason"]


def test_progress_watchdog_hook_and_rich_message():
    sim = Simulator()
    hook_cycles = []

    def on_deadlock(cycle):
        hook_cycles.append(cycle)
        return "extra context 42"

    sim.add_watchdog(ProgressWatchdog(lambda: 7, window=50,
                                      on_deadlock=on_deadlock))
    with pytest.raises(DeadlockError) as exc_info:
        sim.run(500)
    err = exc_info.value
    assert "no progress for 50 cycles" in str(err)
    assert "extra context 42" in str(err)
    assert err.cycle is not None
    assert err.last_progress_cycle == 0
    assert hook_cycles == [err.cycle]


def test_deadlock_error_defaults():
    err = DeadlockError("boom")
    assert err.cycle is None
    assert err.last_progress_cycle is None
    assert err.report is None


def test_system_attaches_crash_report_to_simulation_errors():
    from repro.cpu.workloads import workload_by_name
    from repro.system import build_system

    config = SystemConfig(n_cores=16, seed=1)
    system = build_system(config, workload_by_name("canneal"))
    err = DeadlockError("synthetic stall", cycle=5)
    system._attach_crash_report(err)
    assert err.report is not None
    assert err.report.data["kind"] == "DeadlockError"
    assert err.report.data["error"] == "synthetic stall"
    assert "protocol" in err.report.data
    # idempotent: a second call keeps the first report
    first = err.report
    system._attach_crash_report(err)
    assert err.report is first
