"""A/B equivalence of the full stack on the non-mesh topologies.

The topology abstraction's contract mirrors the hot path's: swapping the
mesh for a torus or a concentrated mesh must change *which* routers a
message visits, never *how* the two pipelines disagree.  For each new
topology these tests pin bit-identity of the fastpath vs. the reference
pipeline (synthetic traffic and a full CMP system), of a sharded run vs.
the same run in one process (including the torus's wraparound boundary
channels), and of a checkpointed run resumed mid-flight vs. the
uninterrupted original.  The square mesh itself is pinned by
``test_hotpath_equivalence.py`` / ``test_shard_equivalence.py``; this
file extends the same witnesses to the new variants.
"""

import dataclasses
import os
import shutil
import tempfile

import pytest

from repro import build_system, workload_by_name
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.checkpoint import (
    CheckpointPolicy,
    fingerprint,
    read_checkpoint,
    restore_system,
    resume_checkpointed,
    run_checkpointed,
)
from repro.sim.config import SystemConfig, Variant, small_test_config
from repro.sim.shard import run_sharded
from repro.system import CmpSystem
from repro.validate.invariants import InvariantMonitor

TOPOLOGIES = ["torus", "cmesh"]

WARMUP = 80
MEASURE = 250


def snapshot(stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (dict(h.buckets), h.count) for k, h in stats.histograms.items()},
    )


def with_noc(cfg, topology, fastpath):
    return dataclasses.replace(
        cfg, noc=dataclasses.replace(
            cfg.noc, topology=topology, fastpath=fastpath
        )
    )


@pytest.fixture(autouse=True)
def _no_engine_env(monkeypatch):
    monkeypatch.delenv("REPRO_TOPOLOGY", raising=False)
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)


def traffic_run(topology, variant, rate, cycles, fastpath, seed=1,
                invariants=False):
    cfg = with_noc(
        SystemConfig(n_cores=16).with_variant(variant), topology, fastpath
    )
    t = RequestReplyTraffic(cfg, rate, seed=seed)
    if invariants:
        InvariantMonitor(t.net, interval=250).attach(t.sim)
    t.run(cycles)
    t.drain()
    return (
        snapshot(t.net.stats),
        t.cycle,
        t.requests_sent,
        t.replies_received,
        tuple(t.reply_latencies),
    )


# ---------------------------------------------------------------------------
# Fast pipeline vs. reference pipeline, per topology.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize(
    "variant", [Variant.BASELINE, Variant.COMPLETE_NOACK, Variant.TIMED_NOACK],
    ids=lambda v: v.name,
)
def test_traffic_bit_identical(topology, variant):
    fast = traffic_run(topology, variant, 24.0, 1500, fastpath=True)
    ref = traffic_run(topology, variant, 24.0, 1500, fastpath=False)
    assert fast == ref


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_traffic_clean_under_invariant_monitor(topology):
    """The flit-census / credit / circuit checkers must hold on the new
    adjacencies (the monitor raises on any violation), and watching must
    not perturb the run."""
    watched = traffic_run(topology, Variant.COMPLETE_NOACK, 24.0, 1500,
                          fastpath=True, invariants=True)
    bare = traffic_run(topology, Variant.COMPLETE_NOACK, 24.0, 1500,
                       fastpath=True)
    assert watched == bare


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_full_system_bit_identical(topology):
    def run(fastpath):
        cfg = with_noc(
            small_test_config(16, Variant.COMPLETE, seed=3),
            topology, fastpath,
        )
        system = build_system(cfg, workload_by_name("fluidanimate"))
        cycles = system.run_instructions(200, max_cycles=1_500_000)
        system.drain()
        return snapshot(system.stats), cycles, system.sim.cycle

    assert run(fastpath=True) == run(fastpath=False)


# ---------------------------------------------------------------------------
# Sharded vs. single-process, per topology.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_sharded_run_bit_identical(topology):
    config = with_noc(small_test_config(16, Variant.COMPLETE, seed=3),
                      topology, fastpath=True)
    system = CmpSystem(config, workload_by_name("canneal"))
    system.warmup(WARMUP)
    start = system.sim.cycle
    finish = system.run_instructions(MEASURE)
    ref = (snapshot(system.stats), start, finish, system.sim.cycle)

    result = run_sharded(config, "canneal", WARMUP, MEASURE,
                         n_shards=2, check=False)
    assert (snapshot(result.stats), result.start_cycle,
            result.finish_cycle, result.end_cycle) == ref


# ---------------------------------------------------------------------------
# Checkpoint / resume on a non-mesh topology.
# ---------------------------------------------------------------------------
def test_checkpoint_resume_bit_identical_on_torus():
    config = with_noc(small_test_config(16, Variant.COMPLETE_NOACK, seed=3),
                      "torus", fastpath=True)
    system = CmpSystem(config, workload_by_name("canneal"))
    system.warmup(WARMUP)
    start = system.sim.cycle
    finish = system.run_instructions(MEASURE)
    ref = (snapshot(system.stats), start, finish, system.sim.cycle)

    config_hash = fingerprint("torus-equivalence")
    directory = tempfile.mkdtemp(prefix="repro-topo-ckpt-")
    try:
        policy = CheckpointPolicy(directory, 600, config_hash)
        system = CmpSystem(config, workload_by_name("canneal"))
        run_start, run_finish = run_checkpointed(
            system, WARMUP, MEASURE, policy, keep_history=True
        )
        assert (snapshot(system.stats), run_start, run_finish,
                system.sim.cycle) == ref

        history = sorted(
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.startswith("run.ckpt.")
        )
        assert len(history) >= 2, "interval too coarse for this test"
        _header, payload = read_checkpoint(
            history[len(history) // 2], kind="run", config_hash=config_hash
        )
        data = restore_system(payload)
        resumed = data["system"]
        scratch = tempfile.mkdtemp(prefix="repro-topo-resume-")
        try:
            res_start, res_finish = resume_checkpointed(
                resumed, data["run"], CheckpointPolicy(scratch, 600,
                                                       config_hash)
            )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        assert (snapshot(resumed.stats), res_start, res_finish,
                resumed.sim.cycle) == ref
    finally:
        shutil.rmtree(directory, ignore_errors=True)
