"""The repro-harness command-line interface."""

import pytest

from repro.harness.__main__ import COMMANDS, main


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    """Make CLI invocations fast by shrinking the simulation quanta."""
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    monkeypatch.delenv("REPRO_FULL", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)


def test_cli_table6(capsys):
    assert main(["table6"]) == 0
    out = capsys.readouterr().out
    assert "Table 6" in out
    assert "Fragmented" in out


def test_cli_table1_small(capsys, monkeypatch):
    # restrict to one light workload for speed
    monkeypatch.setattr(
        "repro.harness.__main__.default_workloads",
        lambda full=None: ["water_spatial"],
    )
    assert main(["table1", "--cores", "16"]) == 0
    out = capsys.readouterr().out
    assert "message class" in out
    assert "L2_REPLY" in out


def test_cli_fig9_small(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.harness.__main__.default_workloads",
        lambda full=None: ["water_spatial"],
    )
    assert main(["fig9", "--cores", "16"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "Ideal" in out


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["figX"])


def test_all_commands_registered():
    assert set(COMMANDS) == {
        "table1", "table5", "table6",
        "fig6", "fig7", "fig8", "fig9", "fig10",
    }
