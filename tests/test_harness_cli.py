"""The repro-harness command-line interface."""

import pytest

from repro.harness.__main__ import COMMANDS, main


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    """Make CLI invocations fast by shrinking the simulation quanta."""
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    monkeypatch.delenv("REPRO_FULL", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)


def test_cli_table6(capsys):
    assert main(["table6"]) == 0
    out = capsys.readouterr().out
    assert "Table 6" in out
    assert "Fragmented" in out


def test_cli_table1_small(capsys, monkeypatch):
    # restrict to one light workload for speed
    monkeypatch.setattr(
        "repro.harness.__main__.default_workloads",
        lambda full=None: ["water_spatial"],
    )
    assert main(["table1", "--cores", "16"]) == 0
    out = capsys.readouterr().out
    assert "message class" in out
    assert "L2_REPLY" in out


def test_cli_fig9_small(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.harness.__main__.default_workloads",
        lambda full=None: ["water_spatial"],
    )
    assert main(["fig9", "--cores", "16"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "Ideal" in out


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["figX"])


def test_all_commands_registered():
    assert set(COMMANDS) == {
        "table1", "table5", "table6",
        "fig6", "fig7", "fig8", "fig9", "fig10",
    }


def test_cli_trace_writes_artifacts(capsys, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "--workload", "fft", "--interval", "200"]) == 0
    out = capsys.readouterr().out
    assert "Baseline" in out and "Complete_NoAck" in out
    assert "circuit hit rate" in out
    assert "perfetto" in out
    traces = list((tmp_path / "out" / "trace").glob("*.json"))
    assert len(traces) == 2  # one per variant
    csvs = list((tmp_path / "out" / "telemetry").glob("*_metrics.csv"))
    assert len(csvs) == 2
    header = csvs[0].read_text().splitlines()[0].split(",")
    assert "circuit_hit_rate" in header and len(header) >= 6


def test_cli_profile_prints_component_table(capsys, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["profile", "--workload", "fft"]) == 0
    out = capsys.readouterr().out
    assert "Kernel profile" in out
    assert "Router" in out and "coherence" in out
    assert "skip ratio" in out


def test_cli_trace_rejects_unknown_variant(capsys):
    assert main(["trace", "--variant", "NoSuchVariant"]) == 2
    assert "unknown variant" in capsys.readouterr().err
