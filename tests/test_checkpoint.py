"""Checkpoint/restart: determinism round-trips and format integrity.

A checkpoint must be exactly three things: *complete* (restoring it and
continuing yields the same statistics, histograms, and finish cycle as
the uninterrupted run, bit for bit), *honest* (any damaged, truncated,
stale, or foreign file is rejected with a typed error naming the exact
mismatch, never silently reinterpreted), and *invisible* (a run that
writes checkpoints is bit-identical to one that does not).  These tests
pin all three, across protocol variants and both router pipelines.
"""

import dataclasses
import json
import os
import shutil
import struct
import tempfile

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.cpu.workloads import workload_by_name
from repro.sim.checkpoint import (
    MAGIC,
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointPolicy,
    CheckpointWatchdog,
    CorruptCheckpointError,
    IncompatibleCheckpointError,
    UnpicklableStateError,
    dumps_state,
    fingerprint,
    read_checkpoint,
    restore_system,
    resume_checkpointed,
    run_checkpointed,
    write_checkpoint,
)
from repro.sim.config import Variant, small_test_config
from repro.system import CmpSystem

WARMUP = 80
MEASURE = 250
INTERVAL = 600  # capture every ~600 cycles: several per phase at this size


def _snapshot(stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def _config(variant, fastpath):
    config = small_test_config(16, variant, seed=3)
    if not fastpath:
        config = dataclasses.replace(
            config, noc=dataclasses.replace(config.noc, fastpath=False)
        )
    return config


def _build(variant, fastpath):
    return CmpSystem(_config(variant, fastpath), workload_by_name("canneal"))


class _Run:
    """One reference + checkpointed run, with its surviving history."""

    def __init__(self, variant, fastpath):
        system = _build(variant, fastpath)
        system.warmup(WARMUP)
        self.start = system.sim.cycle
        self.finish = system.run_instructions(MEASURE)
        self.end = system.sim.cycle
        self.stats = _snapshot(system.stats)

        self.config_hash = fingerprint(variant.value, fastpath)
        self.directory = tempfile.mkdtemp(prefix="repro-ckpt-test-")
        policy = CheckpointPolicy(self.directory, INTERVAL, self.config_hash)
        system = _build(variant, fastpath)
        start, finish = run_checkpointed(system, WARMUP, MEASURE, policy,
                                         keep_history=True)
        # Writing checkpoints must not perturb the run itself.
        assert (start, finish) == (self.start, self.finish)
        assert system.sim.cycle == self.end
        assert _snapshot(system.stats) == self.stats
        self.history = sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.startswith("run.ckpt.")
        )
        assert len(self.history) >= 3, "interval too coarse for this test"


_RUNS = {}


def _run_for(variant, fastpath):
    key = (variant, fastpath)
    if key not in _RUNS:
        _RUNS[key] = _Run(variant, fastpath)
    return _RUNS[key]


@pytest.fixture(scope="module", autouse=True)
def _cleanup_run_dirs():
    yield
    for run in _RUNS.values():
        shutil.rmtree(run.directory, ignore_errors=True)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    variant=st.sampled_from([Variant.BASELINE, Variant.REUSE_NOACK,
                             Variant.COMPLETE]),
    fastpath=st.booleans(),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
@example(variant=Variant.REUSE_NOACK, fastpath=True, fraction=0.0)
@example(variant=Variant.REUSE_NOACK, fastpath=True, fraction=1.0)
@example(variant=Variant.BASELINE, fastpath=False, fraction=0.5)
def test_resume_is_bit_identical(variant, fastpath, fraction):
    """Restoring any mid-run checkpoint replays to the same result."""
    run = _run_for(variant, fastpath)
    pick = min(int(fraction * len(run.history)), len(run.history) - 1)
    _header, payload = read_checkpoint(run.history[pick], kind="run",
                                       config_hash=run.config_hash)
    data = restore_system(payload)
    system = data["system"]
    scratch = tempfile.mkdtemp(prefix="repro-ckpt-resume-")
    try:
        policy = CheckpointPolicy(scratch, INTERVAL, run.config_hash)
        start, finish = resume_checkpointed(system, data["run"], policy)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    assert (start, finish) == (run.start, run.finish)
    assert system.sim.cycle == run.end
    assert _snapshot(system.stats) == run.stats


# -- file format: every damage mode has a typed rejection ---------------

@pytest.fixture
def ckpt(tmp_path):
    path = str(tmp_path / "x.ckpt")
    write_checkpoint(path, b"payload-bytes", kind="run",
                     config_hash="cafe", cycle=42)
    return path


def test_read_back_round_trip(ckpt):
    header, payload = read_checkpoint(ckpt, kind="run", config_hash="cafe")
    assert payload == b"payload-bytes"
    assert header["schema"] == SCHEMA_VERSION
    assert header["cycle"] == 42


def test_bad_magic_is_corrupt(ckpt):
    raw = open(ckpt, "rb").read()
    with open(ckpt, "wb") as fh:
        fh.write(b"NOTACKPT" + raw[len(MAGIC):])
    with pytest.raises(CorruptCheckpointError, match="magic"):
        read_checkpoint(ckpt)


def test_empty_file_is_corrupt(ckpt):
    open(ckpt, "wb").close()
    with pytest.raises(CorruptCheckpointError):
        read_checkpoint(ckpt)


def test_truncated_payload_is_corrupt(ckpt):
    raw = open(ckpt, "rb").read()
    with open(ckpt, "wb") as fh:
        fh.write(raw[:-4])
    with pytest.raises(CorruptCheckpointError, match="truncated"):
        read_checkpoint(ckpt)


def test_payload_bitflip_fails_checksum(ckpt):
    raw = bytearray(open(ckpt, "rb").read())
    raw[-1] ^= 0x40
    with open(ckpt, "wb") as fh:
        fh.write(bytes(raw))
    with pytest.raises(CorruptCheckpointError, match="checksum"):
        read_checkpoint(ckpt)


def _rewrite_header(path, **overrides):
    raw = open(path, "rb").read()
    (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
    header_end = len(MAGIC) + 4 + header_len
    header = json.loads(raw[len(MAGIC) + 4:header_end])
    header.update(overrides)
    blob = json.dumps(header).encode()
    with open(path, "wb") as fh:
        fh.write(MAGIC + struct.pack("<I", len(blob)) + blob
                 + raw[header_end:])


def test_future_schema_is_incompatible(ckpt):
    _rewrite_header(ckpt, schema=SCHEMA_VERSION + 1)
    with pytest.raises(IncompatibleCheckpointError, match="schema"):
        read_checkpoint(ckpt)


def test_wrong_kind_is_incompatible(ckpt):
    with pytest.raises(IncompatibleCheckpointError, match="'shard'"):
        read_checkpoint(ckpt, kind="shard")


def test_foreign_config_is_incompatible(ckpt):
    with pytest.raises(IncompatibleCheckpointError, match="configuration"):
        read_checkpoint(ckpt, kind="run", config_hash="deadbeef")


def test_missing_file_is_a_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(str(tmp_path / "nope.ckpt"))


def test_unknown_closure_is_named_not_silently_dropped():
    with pytest.raises(UnpicklableStateError, match="lambda"):
        dumps_state({"callback": lambda: None})


# -- watchdog cadence: captures land exactly on check boundaries --------

def test_watchdog_aligns_captures_to_check_boundaries(tmp_path):
    wd = CheckpointWatchdog(object(), {}, str(tmp_path / "w.ckpt"),
                            interval=100, config_hash="x")
    wd.set_phase(anchor=0, check_interval=64)
    # First boundary at or past interval 100 is 2 * 64 = 128; the hook
    # fires on cycle 127 (state then corresponds to "about to run 128").
    assert wd.next_due(0) == 127
    wd.set_phase(anchor=1000, check_interval=64, from_cycle=1500)
    # Re-entry mid-phase: boundaries stay anchored at 1000, not 1500.
    assert (wd.next_due(1500) + 1 - 1000) % 64 == 0
    assert wd.next_due(1500) + 1 >= 1500 + 100


def test_watchdog_rejects_nonpositive_interval(tmp_path):
    with pytest.raises(ValueError):
        CheckpointWatchdog(object(), {}, str(tmp_path / "w.ckpt"),
                           interval=0, config_hash="x")
