"""Repository-level contracts: deliverables promised by DESIGN.md exist."""

import pathlib

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_every_experiment_has_a_bench():
    benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
    assert "test_table1_message_mix.py" in benches
    assert "test_table5_reservation_ordinals.py" in benches
    assert "test_table6_router_area.py" in benches
    for fig in (6, 7, 8, 9, 10):
        assert any(f"fig{fig}" in b for b in benches), f"figure {fig} bench"
    assert any("ablation" in b for b in benches)


def test_examples_present_and_importable_as_scripts():
    examples = {p.name for p in (ROOT / "examples").glob("*.py")}
    assert "quickstart.py" in examples
    assert len(examples) >= 3
    import ast

    for path in (ROOT / "examples").glob("*.py"):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        names = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names, f"{path.name} lacks a main()"


def test_documentation_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = ROOT / name
        assert path.exists() and path.stat().st_size > 1000, name
    docs = {p.name for p in (ROOT / "docs").glob("*.md")}
    assert {"architecture.md", "protocol.md", "workloads.md"} <= docs


def test_public_api_surface():
    expected = {
        "SystemConfig", "Variant", "build_system", "workload_by_name",
        "CmpSystem", "compare_variants", "build_partitioned_system",
        "outcome_fractions", "ALL_WORKLOADS",
    }
    assert expected <= set(repro.__all__)
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_all_paper_variants_exposed():
    from repro.sim.config import Variant

    names = {v.value for v in Variant}
    # the paper's section-5 configurations
    for required in ("Baseline", "Fragmented", "Complete", "Complete_NoAck",
                     "Reuse_NoAck", "Timed_NoAck", "SlackDelay1_NoAck",
                     "Postponed1_NoAck", "Ideal"):
        assert required in names
