"""End-to-end tests of the job daemon (:mod:`repro.service`).

The daemon boots for real on a unix socket under ``tmp_path``, with a
sharded result store and forked workers.  The acceptance tests mirror
the service chaos scenarios: concurrent clients must observe results
bit-identical to direct ``run_experiment`` calls, and a worker SIGKILL
mid-job must be absorbed by requeue + respawn.
"""

import os
import signal
import threading
import time

import pytest

from repro.harness import experiment
from repro.harness.experiment import RunSpec
from repro.service import (
    DONE,
    FAILED,
    Daemon,
    ServiceClient,
)
from repro.sim.config import Variant
from repro.telemetry import TelemetryConfig

SMALL = dict(measure_instructions=250, warmup_instructions=80)


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    for var in ("REPRO_SCALE", "REPRO_FULL", "REPRO_JOBS", "REPRO_CACHE",
                "REPRO_CACHE_SHARDS", "REPRO_SERVICE",
                "REPRO_SERVICE_WORKERS", "REPRO_CHECKPOINT",
                "REPRO_RESUME"):
        monkeypatch.delenv(var, raising=False)
    saved = dict(experiment._memo)
    experiment._memo.clear()
    yield
    experiment._memo.clear()
    experiment._memo.update(saved)


@pytest.fixture
def daemon(tmp_path):
    env = dict(os.environ,
               REPRO_CACHE=str(tmp_path / "store") + os.sep)
    d = Daemon(str(tmp_path / "repro.sock"), workers=2, env=env)
    d.start()
    yield d
    d.shutdown()


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.address)


def _direct(spec):
    """Bit-exact reference: the plain run_experiment code path."""
    return experiment.run_experiment(spec).to_json()


def test_info_reports_fleet(client, daemon):
    info = client.info()
    assert info["pid"] == os.getpid()
    assert len(info["workers"]) == 2
    assert all(w["alive"] for w in info["workers"])
    assert info["respawns"] == 0
    assert info["store"].rstrip(os.sep).endswith("store")
    assert client.ping()


def test_submit_result_bit_identical_to_direct_run(client):
    spec = RunSpec(16, Variant.BASELINE, "canneal", 1, **SMALL)
    [status] = client.submit([spec])
    assert status["state"] in ("queued", "running")
    [row] = client.results([status["job_id"]], timeout=300.0)
    assert row["state"] == DONE
    assert row["source"] == "run"
    assert row["attempts"] == 0
    assert row["result"] == _direct(spec)


def test_dedup_joins_queued_running_and_done(client):
    spec = RunSpec(16, Variant.COMPLETE, "canneal", 1, **SMALL)
    [first] = client.submit([spec])
    [second] = client.submit([spec])
    assert second["job_id"] == first["job_id"]
    [row] = client.results([first["job_id"]], timeout=300.0)
    assert row["state"] == DONE
    # Even after completion, a resubmission joins the finished job.
    [third] = client.submit([spec])
    assert third["job_id"] == first["job_id"]
    assert third["state"] == DONE


def test_observed_specs_never_dedup(client, tmp_path):
    telemetry = TelemetryConfig(
        metrics=True, spans=False, profile=False, interval=50,
        out_dir=str(tmp_path / "telemetry"),
        trace_dir=str(tmp_path / "trace"),
    )
    spec = RunSpec(16, Variant.BASELINE, "canneal", 1,
                   telemetry=telemetry, **SMALL)
    [a] = client.submit([spec])
    [b] = client.submit([spec])
    assert a["job_id"] != b["job_id"]
    client.results([a["job_id"], b["job_id"]], timeout=300.0)


def test_store_hit_served_without_simulation(client, daemon, tmp_path):
    spec = RunSpec(16, Variant.FRAGMENTED, "canneal", 1, **SMALL)
    [status] = client.submit([spec])
    [row] = client.results([status["job_id"]], timeout=300.0)
    daemon.shutdown()
    # A fresh daemon over the same store answers at submit time.
    second = Daemon(str(tmp_path / "b.sock"), workers=1, env=daemon.env)
    second.start()
    try:
        client2 = ServiceClient(second.address)
        [cached] = client2.submit([spec])
        assert cached["state"] == DONE
        assert cached["source"] == "cache"
        [row2] = client2.results([cached["job_id"]], wait=False)
        assert row2["result"] == row["result"]
        assert sum(w["executed"] for w in client2.info()["workers"]) == 0
    finally:
        second.shutdown()


def test_concurrent_clients_get_bit_identical_results(daemon):
    specs = [RunSpec(16, Variant.BASELINE, "canneal", seed, **SMALL)
             for seed in (1, 2, 3, 4)]
    outcomes = {}
    errors = []

    def one_client(idx):
        try:
            client = ServiceClient(daemon.address)
            # Reversed order for odd clients: submission order must not
            # matter once dedup folds the batches together.
            batch = list(reversed(specs)) if idx % 2 else list(specs)
            statuses = client.submit(batch)
            rows = client.results([s["job_id"] for s in statuses],
                                  timeout=600.0)
            outcomes[idx] = {row["key"]: row["result"] for row in rows}
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((idx, exc))

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert not errors
    assert len(outcomes) == 4
    reference = {spec.key(): _direct(spec) for spec in specs}
    for idx, per_client in outcomes.items():
        assert per_client == reference, f"client {idx} diverged"
    # Dedup means the fleet simulated each spec exactly once.
    info = ServiceClient(daemon.address).info()
    assert info["jobs"] == {DONE: len(specs)}


def test_worker_sigkill_mid_job_requeues_bit_identical(client):
    spec = RunSpec(16, Variant.REUSE_NOACK, "canneal", 5,
                   measure_instructions=2500, warmup_instructions=300)
    [status] = client.submit([spec])
    job_id = status["job_id"]
    victim = None
    deadline = time.time() + 60
    while time.time() < deadline:
        busy = [w for w in client.info()["workers"]
                if w["current"] == job_id and w["alive"]]
        if busy:
            victim = busy[0]["pid"]
            break
        state = client.status([job_id])[0]["state"]
        assert state not in (DONE, FAILED), \
            f"job finished ({state}) before the kill landed"
        time.sleep(0.01)
    assert victim is not None, "job never started running"
    os.kill(victim, signal.SIGKILL)
    [row] = client.results([job_id], timeout=600.0)
    assert row["state"] == DONE
    assert row["attempts"] == 1  # exactly one requeue
    assert client.info()["respawns"] == 1
    assert row["result"] == _direct(spec)


def test_infra_failure_exhausts_retries_then_failed(client, daemon):
    spec = RunSpec(16, Variant.BASELINE, "no-such-workload", 1, **SMALL)
    [status] = client.submit([spec])
    [row] = client.results([status["job_id"]], timeout=300.0)
    assert row["state"] == FAILED
    assert row["attempts"] == daemon.retries + 1
    assert row["error_kind"] == "KeyError"
    assert "no-such-workload" in row["error"]
    # FAILED jobs do not absorb resubmissions: the next submit retries.
    [again] = client.submit([spec])
    assert again["job_id"] != status["job_id"]


def test_stream_delivers_live_metrics_then_end(client, tmp_path):
    telemetry = TelemetryConfig(
        metrics=True, spans=False, profile=False, interval=50,
        out_dir=str(tmp_path / "telemetry"),
        trace_dir=str(tmp_path / "trace"),
    )
    spec = RunSpec(16, Variant.BASELINE, "canneal", 1,
                   telemetry=telemetry, **SMALL)
    [status] = client.submit([spec])
    events = list(client.stream(status["job_id"]))
    assert events[-1] == {"event": "end", "state": DONE}
    metrics = [e for e in events if e["event"] == "metric"]
    assert metrics, "no metric samples streamed"
    cycles = [e["cycle"] for e in metrics]
    assert cycles == sorted(cycles)
    assert all(isinstance(e["values"], dict) and e["values"]
               for e in metrics)


def test_status_of_unknown_job(client):
    [row] = client.status(["job-does-not-exist"])
    assert row["state"] == "unknown"


def test_shutdown_op_stops_the_daemon(daemon):
    client = ServiceClient(daemon.address)
    assert client.ping()
    client.shutdown()
    deadline = time.time() + 30
    while time.time() < deadline and client.ping():
        time.sleep(0.05)
    assert not client.ping()
