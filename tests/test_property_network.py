"""Property-based end-to-end invariants on the NoC under random traffic."""

from hypothesis import given, settings, strategies as st

from repro.sim.config import Variant

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from conftest import ScriptedChip  # noqa: E402


VARIANTS = [
    Variant.BASELINE,
    Variant.COMPLETE,
    Variant.COMPLETE_NOACK,
    Variant.FRAGMENTED,
    Variant.REUSE_NOACK,
    Variant.TIMED_NOACK,
    Variant.SLACKDELAY1_NOACK,
    Variant.POSTPONED1_NOACK,
    Variant.IDEAL,
]

traffic_strategy = st.lists(
    st.tuples(
        st.integers(0, 15),  # src
        st.integers(0, 15),  # dest
        st.integers(0, 8),   # inject gap
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=12, deadline=None)
@given(variant=st.sampled_from(VARIANTS), traffic=traffic_strategy)
def test_all_requests_get_replies_and_network_drains(variant, traffic):
    chip = ScriptedChip(16, variant)
    sent = 0
    for i, (src, dest, gap) in enumerate(traffic):
        chip.request(src, dest, addr=0x40 * (i + 1))
        sent += 1
        chip.run(gap)
    chip.run_until_drained(60000)

    requests = [m for _, m in chip.deliveries if m.vn == 0]
    replies = [m for _, m in chip.deliveries if m.vn == 1]
    assert len(requests) == sent
    assert len(replies) == sent
    # every reply reached its requestor
    by_key = {m.circuit_key: m for m in replies}
    for req in requests:
        assert by_key[req.circuit_key].dest == req.src \
            or by_key[req.circuit_key].final_dest == req.src

    # credit conservation at every router output
    depth = chip.config.noc.buffer_depth_flits
    for router in chip.net.routers:
        for port, out in ((p, router.outputs[p]) for p in router.ports):
            if port.name == "LOCAL":
                continue
            for vn_row in out.vcs:
                for ovc in vn_row:
                    if ovc.index in (1, 2) and vn_row[0].vn == 1 and \
                            variant not in (Variant.BASELINE,
                                            Variant.FRAGMENTED,
                                            Variant.IDEAL):
                        continue  # bufferless circuit VC carries no credits
                    assert ovc.credits == depth
                    assert ovc.allocated_to is None

    # no live circuit reservations survive the drain
    assert chip.net.live_circuit_entries(chip.cycle) == 0

    # NI credit mirrors are restored too
    for ni in chip.net.interfaces:
        for vn, row in enumerate(ni.credits):
            for vc, credits in enumerate(row):
                if (vn, vc) in chip.net.policy.bufferless_vcs():
                    assert credits == 0
                else:
                    assert credits == depth


@settings(max_examples=8, deadline=None)
@given(
    variant=st.sampled_from([Variant.COMPLETE_NOACK, Variant.REUSE_NOACK,
                             Variant.SLACKDELAY1_NOACK]),
    traffic=traffic_strategy,
    extra_replies=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=8
    ),
)
def test_outcomes_accounted_exactly_once(variant, traffic, extra_replies):
    chip = ScriptedChip(16, variant)
    for i, (src, dest, gap) in enumerate(traffic):
        chip.request(src, dest, addr=0x40 * (i + 1))
        chip.run(gap)
    for src, dest in extra_replies:
        chip.send_reply(src, dest, kind="L1_DATA_ACK")
    chip.run_until_drained(60000)
    replies_sent = len(traffic) + len(extra_replies)
    total_outcomes = sum(
        chip.stats.counter(f"circuit.outcome.{name}")
        for name in ("on_circuit", "failed", "undone", "scrounger",
                     "not_eligible", "eliminated")
    )
    assert total_outcomes == replies_sent
    assert chip.stats.counter("circuit.replies_total") == replies_sent
