"""Trace file recording and replay."""

import pytest

from repro import build_system, workload_by_name
from repro.cpu.tracefile import (
    FileTraceWorkload,
    TraceFileError,
    TraceFileStream,
    TraceRecorder,
    capture_workload,
)
from repro.sim.config import Variant, small_test_config
from repro.sim.rng import DeterministicRng


def test_recorder_roundtrip(tmp_path):
    recorder = TraceRecorder(n_cores=2, line_bytes=64)
    recorder.record(0, (3, False, 0x1000))
    recorder.record(0, (0, True, 0x2000))
    recorder.record(1, (5, False, 0x3000))
    path = tmp_path / "t.trace"
    recorder.write(path)
    workload = FileTraceWorkload(path)
    assert workload.n_cores == 2
    streams = workload.streams(2, 64, None)
    assert streams[0].next_access() == (3, False, 0x1000)
    assert streams[0].next_access() == (0, True, 0x2000)
    assert streams[1].next_access() == (5, False, 0x3000)


def test_stream_loops_when_exhausted():
    stream = TraceFileStream([(1, False, 0x40), (2, True, 0x80)], core=0)
    assert stream.next_access() == (1, False, 0x40)
    assert stream.next_access() == (2, True, 0x80)
    assert stream.next_access() == (1, False, 0x40)
    assert stream.wraps == 1


def test_empty_core_rejected():
    with pytest.raises(TraceFileError):
        TraceFileStream([], core=0)


def test_capture_workload_and_replay(tmp_path):
    path = tmp_path / "canneal.trace"
    rng = DeterministicRng(1).stream("capture")
    capture_workload(workload_by_name("canneal"), 16, 64, rng,
                     accesses_per_core=50, path=path)
    workload = FileTraceWorkload(path, name="canneal-trace")
    assert workload.name == "canneal-trace"
    streams = workload.streams(16, 64, None)
    assert len(streams) == 16
    for stream in streams:
        gap, is_write, addr = stream.next_access()
        assert gap >= 0 and addr % 64 == 0


def test_core_count_mismatch(tmp_path):
    recorder = TraceRecorder(4, 64)
    recorder.record(0, (0, False, 0x40))
    path = tmp_path / "t.trace"
    recorder.write(path)
    workload = FileTraceWorkload(path)
    with pytest.raises(TraceFileError):
        workload.streams(16, 64, None)
    with pytest.raises(TraceFileError):
        workload.streams(4, 32, None)


def test_malformed_files_rejected(tmp_path):
    cases = {
        "no_header.trace": "0 1 r 40\n",
        "bad_fields.trace": "# repro-trace v1 cores=1 line=64\n0 1 r\n",
        "bad_rw.trace": "# repro-trace v1 cores=1 line=64\n0 1 x 40\n",
        "bad_core.trace": "# repro-trace v1 cores=1 line=64\n7 1 r 40\n",
        "bad_int.trace": "# repro-trace v1 cores=1 line=64\n0 q r 40\n",
    }
    for name, body in cases.items():
        path = tmp_path / name
        path.write_text(body)
        with pytest.raises(TraceFileError):
            FileTraceWorkload(path)


def test_full_system_runs_from_trace(tmp_path):
    """A chip driven by a replayed trace executes end to end."""
    path = tmp_path / "t.trace"
    rng = DeterministicRng(3).stream("capture")
    capture_workload(workload_by_name("water_spatial"), 16, 64, rng,
                     accesses_per_core=300, path=path)
    config = small_test_config(16, Variant.COMPLETE_NOACK)
    system = build_system(config, FileTraceWorkload(path))
    cycles = system.run_instructions(400, max_cycles=1_000_000)
    assert cycles > 0
    assert system.stats.counter("circuit.outcome.on_circuit") > 0


def test_trace_replay_is_deterministic(tmp_path):
    path = tmp_path / "t.trace"
    rng = DeterministicRng(3).stream("capture")
    capture_workload(workload_by_name("water_spatial"), 16, 64, rng,
                     accesses_per_core=200, path=path)
    config = small_test_config(16, Variant.BASELINE)

    def run():
        system = build_system(config, FileTraceWorkload(path))
        return system.run_instructions(300, max_cycles=1_000_000)

    assert run() == run()
