"""Fragmented circuits (section 4.2): partial reservations, buffered
circuit VCs, and gap traversal."""

from repro.sim.config import Variant


def reply_of(c, req):
    replies = [m for _, m in c.deliveries
               if m.vn == 1 and m.circuit_key == req.circuit_key]
    assert len(replies) == 1
    return replies[0]


def test_reply_vn_has_three_vcs_with_buffers(chip):
    c = chip(Variant.FRAGMENTED)
    router = c.net.routers[5]
    for _port, unit in router._input_units:
        assert len(unit.vcs[1]) == 3
        for vc in unit.vcs[1]:
            assert vc.depth == 5  # fragmented keeps all buffers


def test_full_fragmented_circuit_matches_complete_speed(chip):
    c = chip(Variant.FRAGMENTED)
    req = c.request(0, 15)
    c.run_until_drained()
    reply = reply_of(c, req)
    assert reply.outcome == "on_circuit"
    assert reply.network_latency == 20  # same fly-through timing


def test_capacity_is_two_per_input(chip):
    c = chip(Variant.FRAGMENTED, turnaround=2000)
    reqs = [c.request(0, 15, addr=0x100 * (i + 1)) for i in range(4)]
    c.run(300)
    reserved = [r for r in reqs if r.walk and r.walk.fully_reserved]
    assert len(reserved) == 2  # only two circuit VCs per input port
    c.run_until_drained(60000)


def test_partial_circuit_still_accelerates(chip):
    """A reply whose circuit is only partially built uses the built hops
    and is classified as 'failed' (paper Fig. 6 fragmented bar)."""
    c = chip(Variant.FRAGMENTED, turnaround=2000)
    blockers = [c.request(0, 15, addr=0x100 * (i + 1)) for i in range(2)]
    c.run(200)
    partial = c.request(0, 15, addr=0x900)
    c.run(200)
    assert partial.walk is not None
    assert not partial.walk.fully_reserved
    c.run_until_drained(80000)
    reply = reply_of(c, partial)
    assert reply.outcome == "failed"
    # all blockers ride their circuits
    for blocker in blockers:
        assert reply_of(c, blocker).outcome == "on_circuit"


def test_entries_cleared_after_use(chip):
    c = chip(Variant.FRAGMENTED)
    for i in range(4):
        c.request(i, 15 - i, addr=0x40 * (i + 1))
    c.run_until_drained(30000)
    assert c.net.circuit_entries() == 0


def test_credits_conserved_after_fragmented_traffic(chip):
    c = chip(Variant.FRAGMENTED)
    for burst in range(3):
        for src in (0, 3, 12, 15, 5, 10):
            c.request(src, 15 - src, addr=0x40 * (src + 1) + burst * 0x2000)
        c.run(30)
    c.run_until_drained(60000)
    depth = c.config.noc.buffer_depth_flits
    for router in c.net.routers:
        for port, out in ((p, router.outputs[p]) for p in router.ports):
            if port.name == "LOCAL":
                continue
            for vn_row in out.vcs:
                for ovc in vn_row:
                    assert ovc.credits == depth, (
                        f"credit leak router {router.node} {port.name} "
                        f"vn{ovc.vn} vc{ovc.index}: {ovc.credits}"
                    )
                    assert ovc.allocated_to is None
