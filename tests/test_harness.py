"""Experiment harness: runner, caching, table/figure builders, rendering."""

import json

import pytest

from repro.circuits.outcomes import (
    OUTCOME_ORDER,
    ReplyOutcome,
    outcome_counts,
    outcome_fractions,
)
from repro.harness import figures, render, tables
from repro.harness.experiment import (
    RunResult,
    RunSpec,
    _memo,
    default_workloads,
    run_experiment,
    run_matrix,
)
from repro.sim.config import Variant
from repro.sim.stats import Stats

SMALL = dict(measure_instructions=250, warmup_instructions=80)
WLS = ["water_spatial"]


def spec(variant=Variant.BASELINE, workload="water_spatial", cores=16):
    return RunSpec(cores, variant, workload, seed=1, **SMALL)


def test_run_experiment_produces_measurements():
    result = run_experiment(spec())
    assert result.exec_cycles > 0
    assert result.counter("noc.msgs_delivered") > 0
    assert result.mean("lat.net.req") > 0
    assert result.variant == "Baseline"


def test_run_experiment_is_memoised():
    a = run_experiment(spec())
    b = run_experiment(spec())
    assert a is b


def test_disk_cache_roundtrip(tmp_path, monkeypatch):
    path = tmp_path / "cache.json"
    monkeypatch.setenv("REPRO_CACHE", str(path))
    s = spec(Variant.COMPLETE)
    first = run_experiment(s)
    assert path.exists()
    _memo.clear()
    second = run_experiment(s)
    assert second.exec_cycles == first.exec_cycles
    assert second.counters == first.counters


def test_scale_env_changes_spec(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.0")
    scaled = RunSpec(16, Variant.BASELINE, "mix").scaled()
    assert scaled.measure_instructions == 6000
    monkeypatch.setenv("REPRO_SCALE", "1.0")


def test_default_workloads_subset_and_full(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    subset = default_workloads()
    assert "canneal" in subset and len(subset) == 6
    assert len(default_workloads(full=True)) == 22


def test_run_matrix_shape():
    out = run_matrix(16, [Variant.BASELINE], WLS)
    assert set(out) == {Variant.BASELINE}
    assert set(out[Variant.BASELINE]) == set(WLS)


def test_outcome_fractions_sum_to_one():
    stats = Stats()
    stats.bump("circuit.outcome.on_circuit", 6)
    stats.bump("circuit.outcome.failed", 2)
    stats.bump("circuit.outcome.eliminated", 2)
    fractions = outcome_fractions(stats)
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[ReplyOutcome.ON_CIRCUIT] == 0.6
    assert outcome_counts(stats)[ReplyOutcome.FAILED] == 2


def test_outcome_fractions_empty():
    fractions = outcome_fractions(Stats())
    assert all(v == 0 for v in fractions.values())


def test_table6_is_pure_model():
    rows = tables.table6()
    assert set(rows) == set(tables.TABLE6_PAPER)
    assert rows[("Fragmented", 16)] < 0 < rows[("Complete", 16)]


def test_render_helpers_produce_tables():
    t6 = render.render_table6(tables.table6(), tables.TABLE6_PAPER)
    assert "Fragmented" in t6 and "paper" in t6
    fig = render.render_ratio_figure({"X": (1.05, 0.01)}, "speedup")
    assert "1.050" in fig
    f10 = render.render_figure10({"canneal": 1.08})
    assert "+8.0%" in f10


def test_render_figure6_lists_all_outcomes():
    data = {"Complete": {o.value: 0.1 for o in OUTCOME_ORDER}}
    text = render.render_figure6(data)
    for outcome in OUTCOME_ORDER:
        assert outcome.value in text


def test_result_json_roundtrip():
    result = run_experiment(spec())
    clone = RunResult.from_json(json.loads(json.dumps(result.to_json())))
    assert clone.exec_cycles == result.exec_cycles
    assert clone.counters == result.counters


def test_figure9_contains_every_variant_speedup():
    # use the memoised tiny runs: restrict to one workload for speed
    data = figures.figure9(WLS, 16)
    assert set(data) == {v.value for v in figures.FIG9_VARIANTS}
    for _variant, (mean, err) in data.items():
        assert 0.5 < mean < 2.0
        assert err >= 0


def test_figure8_normalised_to_baseline():
    data = figures.figure8(WLS, 16)
    assert data["Baseline"] == (1.0, 0.0)
    for variant, (mean, _err) in data.items():
        assert 0.3 < mean < 2.0


def test_figure7_reports_three_classes():
    data = figures.figure7(WLS, 16)
    for variant, classes in data.items():
        assert set(classes) == {"req", "crep", "norep"}


def test_figure6_fractions_bounded():
    data = figures.figure6(WLS, 16)
    for variant, outcomes in data.items():
        assert 0.0 <= sum(outcomes.values()) <= 1.0 + 1e-9


def test_figure10_per_workload():
    data = figures.figure10(WLS, 16)
    assert set(data) == set(WLS)


def test_run_result_carries_latency_percentiles():
    result = run_experiment(spec(Variant.COMPLETE_NOACK))
    p50 = result.mean("lat.net.crep.p50")
    p95 = result.mean("lat.net.crep.p95")
    p99 = result.mean("lat.net.crep.p99")
    assert 0 < p50 <= p95 <= p99
    # tail latency is at least the median, and mean sits near the middle
    assert p99 >= result.mean("lat.net.crep") * 0.8
    # the full distribution rides along: percentile() answers any p
    assert result.histogram("lat.net.crep").count > 0
    assert result.percentile("lat.net.crep", 95) == p95
    assert result.percentile("lat.net.crep", 50) <= result.percentile(
        "lat.net.crep", 99.9
    )
