"""Telemetry must be a pure observer: A/B bit-identity + golden trace.

The A/B tests run the same simulation twice - once bare, once with every
telemetry instrument attached - and require *bit-identical* stats
counters, means, histograms and finish cycles.  This is the contract that
lets telemetry ship enabled in experiments without invalidating the
result cache.

The golden-file test pins the Chrome-trace exporter's schema: a
deterministic two-message run on the scripted chip must serialise exactly
to ``tests/golden/trace_small.json`` (regenerate with
``REPRO_REGOLDEN=1 pytest tests/test_telemetry_ab.py -k golden``).
"""

import itertools
import json
import os

import pytest

import repro.noc.flit as flit_mod
from repro.harness.experiment import RunSpec, _memo, run_experiment
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.telemetry import SpanRecorder, Telemetry, TelemetryConfig

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "trace_small.json")
SMALL = dict(measure_instructions=250, warmup_instructions=80)


def stats_snapshot(stats):
    """Every accumulator in comparable form (the bit-identity witness)."""
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (dict(h.buckets), h.count, h.bucket_width)
         for k, h in stats.histograms.items()},
    )


def _traffic():
    return RequestReplyTraffic(
        SystemConfig(n_cores=16).with_variant(Variant.COMPLETE_NOACK),
        requests_per_node_per_kcycle=40.0,
        seed=11,
    )


def test_traffic_run_is_bit_identical_under_full_telemetry(tmp_path):
    bare = _traffic()
    bare.run(2000)
    bare.drain()
    reference = (stats_snapshot(bare.net.stats), bare.sim.cycle,
                 bare.sim.ticks_run, bare.sim.cycles_skipped)

    observed = _traffic()
    telem = Telemetry(TelemetryConfig(
        interval=250,
        out_dir=str(tmp_path / "t"),
        trace_dir=str(tmp_path / "tr"),
    )).attach(observed)
    observed.run(2000)
    observed.drain()
    telem.detach()

    assert (stats_snapshot(observed.net.stats), observed.sim.cycle,
            observed.sim.ticks_run, observed.sim.cycles_skipped) == reference
    # and the observation itself was substantive, not vacuously empty
    assert len(telem.registry) >= 8
    assert any(telem.registry.series("circuit_hit_rate"))
    assert telem.spans.closed
    assert telem.profiler.report()["classes"]["Router"]["ticks"] > 0


def test_run_experiment_bit_identical_with_telemetry(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    _memo.clear()
    plain_spec = RunSpec(16, Variant.COMPLETE_NOACK, "water_spatial",
                         seed=1, **SMALL)
    plain = run_experiment(plain_spec)

    observed_spec = RunSpec(
        16, Variant.COMPLETE_NOACK, "water_spatial", seed=1,
        telemetry=TelemetryConfig(
            interval=200,
            out_dir=str(tmp_path / "telemetry"),
            trace_dir=str(tmp_path / "trace"),
        ),
        **SMALL,
    )
    # same cache key, but the observed run bypasses the memo and re-runs
    assert observed_spec.key() == plain_spec.key()
    observed = run_experiment(observed_spec)

    assert observed.exec_cycles == plain.exec_cycles
    assert observed.counters == plain.counters
    assert observed.means == plain.means
    assert observed.outcomes == plain.outcomes
    assert observed.histograms == plain.histograms
    # the artifacts the acceptance criteria call for actually exist
    trace_files = os.listdir(tmp_path / "trace")
    assert len(trace_files) == 1
    trace = json.load(open(tmp_path / "trace" / trace_files[0]))
    assert trace["traceEvents"]
    csvs = [f for f in os.listdir(tmp_path / "telemetry")
            if f.endswith("_metrics.csv")]
    assert len(csvs) == 1
    header = open(tmp_path / "telemetry" / csvs[0]).readline().strip()
    streams = header.split(",")
    assert len(streams) >= 6 and "circuit_hit_rate" in streams


def _scripted_trace(chip):
    """Two-message deterministic run -> Chrome trace dict."""
    c = chip(variant=Variant.COMPLETE_NOACK)
    recorder = SpanRecorder()
    for router in c.net.routers:
        router.observer = recorder
    for ni in c.net.interfaces:
        ni.observer = recorder
    c.request(0, 5)
    c.run_until_drained()
    c.request(3, 12)
    c.run_until_drained()
    return recorder.chrome_trace()


def test_chrome_trace_matches_golden(chip, monkeypatch, tmp_path):
    monkeypatch.setattr(flit_mod, "_msg_ids", itertools.count())
    trace = _scripted_trace(chip)
    # normalise through JSON exactly as write_chrome_trace does
    produced = json.loads(json.dumps(trace, indent=1, sort_keys=True))
    if os.environ.get("REPRO_REGOLDEN"):
        os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
        with open(GOLDEN, "w") as handle:
            json.dump(produced, handle, indent=1, sort_keys=True)
    with open(GOLDEN) as handle:
        golden = json.load(handle)
    assert produced == golden


def test_chrome_trace_is_deterministic(chip, monkeypatch):
    monkeypatch.setattr(flit_mod, "_msg_ids", itertools.count())
    first = _scripted_trace(chip)
    monkeypatch.setattr(flit_mod, "_msg_ids", itertools.count())
    second = _scripted_trace(chip)
    assert first == second
