# Convenience targets for the Reactive Circuits reproduction.

PYTHON ?= python

.PHONY: install test bench reproduce examples clean

install:
	pip install -e .[test] || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Full paper-vs-measured sweep (hours at scale 1; see EXPERIMENTS.md).
reproduce:
	REPRO_CACHE=out/results_cache.json $(PYTHON) tools/run_reproduction.py out/report.txt

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/noc_microscope.py
	$(PYTHON) examples/timed_slack_sweep.py
	$(PYTHON) examples/multiprogrammed_mix.py
	$(PYTHON) examples/scaling_study.py
	$(PYTHON) examples/partitioned_chip.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
