#!/usr/bin/env python
"""Benchmark the sharded engine: cycles/sec at 1/2/4 shards.

Measures the measured-phase simulation rate of one run executed on the
single-process engine (the 1-shard baseline) and on the sharded engine
(``repro.sim.shard``) at 2 and 4 shards, for 8x8 and 16x16 meshes, and
verifies that every sharded run is bit-identical (stats + finish cycle)
to its single-process reference.

Metric: the headline rate is **critical-path cycles/sec** =
``cycles / (max per-worker measured-phase CPU time + coordinator CPU
time)`` - the standard way to evaluate a conservative-PDES engine on a
host with fewer cores than shards, because it is what wall-clock
converges to once each shard owns a core.  Wall-clock cycles/sec is
recorded alongside it; on a single-CPU host wall time cannot improve
with shard count (the workers time-share one core), which the JSON
labels explicitly.

Modes
-----
``--smoke``   fast CI gate: one small sharded point must complete and be
              bit-identical to single-process (no speed assertion - CI
              machine speed varies).
default       full benchmark; writes BENCH_shard.json and enforces the
              >= 1.5x critical-path speedup gate on 16x16 at 4 shards.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cpu.workloads import workload_by_name  # noqa: E402
from repro.sim.config import Variant, small_test_config  # noqa: E402
from repro.sim.shard import run_sharded  # noqa: E402
from repro.system import CmpSystem  # noqa: E402

WORKLOAD = "canneal"
VARIANT = Variant.COMPLETE
SEED = 3
#: Measured instructions per core (measure-only: no warmup, so the whole
#: run is the timed phase and the comparison is clean).
MEASURE = {64: 120, 256: 60}
SPEEDUP_GATE = 1.5  # 16x16 @ 4 shards vs 1 shard, critical-path metric


def calibrate(duration: float = 0.25) -> float:
    """Busy-loop iterations/sec: normalises results across machines."""
    end = time.perf_counter() + duration
    iters = 0
    x = 0
    while time.perf_counter() < end:
        for _ in range(10_000):
            x = (x * 1103515245 + 12345) & 0xFFFFFFFF
        iters += 10_000
    return iters / duration


def _snapshot(stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def run_single(n_cores: int, measure: int) -> dict:
    """The 1-shard baseline: the plain single-process engine."""
    config = small_test_config(n_cores, VARIANT, seed=SEED)
    system = CmpSystem(config, workload_by_name(WORKLOAD))
    start = system.sim.cycle
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    finish = system.run_instructions(measure)
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    cycles = finish - start
    return {
        "shards": 1,
        "cycles": cycles,
        "finish_cycle": finish,
        "cpu_seconds_critical": cpu,
        "wall_seconds": wall,
        "cycles_per_sec_critical": cycles / cpu,
        "cycles_per_sec_wall": cycles / wall,
        "snapshot": _snapshot(system.stats),
    }


def run_shards(n_cores: int, measure: int, n_shards: int) -> dict:
    config = small_test_config(n_cores, VARIANT, seed=SEED)
    result = run_sharded(config, WORKLOAD, 0, measure,
                         n_shards=n_shards, check=False)
    critical = (max(result.worker_cpu_seconds_measure)
                + result.coordinator_cpu_seconds)
    cycles = result.exec_cycles
    return {
        "shards": n_shards,
        "cycles": cycles,
        "finish_cycle": result.finish_cycle,
        "window": result.window,
        "cpu_seconds_critical": critical,
        "worker_cpu_seconds_measure": result.worker_cpu_seconds_measure,
        "coordinator_cpu_seconds": result.coordinator_cpu_seconds,
        "wall_seconds": result.wall_seconds,
        "cycles_per_sec_critical": cycles / critical,
        "cycles_per_sec_wall": cycles / result.wall_seconds,
        "snapshot": _snapshot(result.stats),
    }


def bench_mesh(n_cores: int, shard_counts) -> list:
    measure = MEASURE[n_cores]
    side = int(n_cores ** 0.5)
    points = []
    reference = run_single(n_cores, measure)
    points.append(reference)
    print(f"  {side}x{side} 1 shard : "
          f"{reference['cycles_per_sec_critical']:8.0f} c/s critical "
          f"({reference['cycles']} cycles, "
          f"{reference['wall_seconds']:.1f}s wall)")
    for n_shards in shard_counts:
        point = run_shards(n_cores, measure, n_shards)
        point["identical"] = (
            point["snapshot"] == reference["snapshot"]
            and point["finish_cycle"] == reference["finish_cycle"]
        )
        speedup = (point["cycles_per_sec_critical"]
                   / reference["cycles_per_sec_critical"])
        point["speedup_critical_vs_1shard"] = speedup
        print(f"  {side}x{side} {n_shards} shards: "
              f"{point['cycles_per_sec_critical']:8.0f} c/s critical "
              f"({speedup:.2f}x, identical={point['identical']}, "
              f"{point['wall_seconds']:.1f}s wall)")
        points.append(point)
    for point in points:  # snapshots are for verification, not the JSON
        point.pop("snapshot")
    return points


def smoke() -> int:
    """CI gate: a sharded run completes and is bit-identical.

    No speed assertion: CI machines (and their core counts) vary, so the
    smoke gate checks correctness only; the committed BENCH_shard.json
    documents the measured speedups.
    """
    measure = 150
    config = small_test_config(16, VARIANT, seed=SEED)
    system = CmpSystem(config, workload_by_name(WORKLOAD))
    start = system.sim.cycle
    finish = system.run_instructions(measure)
    reference = _snapshot(system.stats)
    failures = 0
    for n_shards in (2, 4):
        result = run_sharded(config, WORKLOAD, 0, measure,
                             n_shards=n_shards, check=False)
        ok = (_snapshot(result.stats) == reference
              and result.finish_cycle == finish
              and result.start_cycle == start)
        print(f"smoke 4x4 {n_shards} shards: "
              f"{'bit-identical' if ok else 'MISMATCH'} "
              f"({result.exec_cycles} cycles, "
              f"{result.wall_seconds:.1f}s wall)")
        failures += 0 if ok else 1
    if failures:
        print(f"SMOKE FAILED: {failures} sharded run(s) diverged")
        return 1
    print("smoke OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI gate (bit-identity only)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_shard.json "
                             "next to the repo root)")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and write JSON without enforcing "
                             "the speedup gate")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    out_path = args.out or os.path.join(
        os.path.dirname(__file__), "..", "BENCH_shard.json"
    )
    iters = calibrate()
    print(f"calibration: {iters / 1e6:.1f}M busy-loop iters/sec")
    data = {
        "schema": 1,
        "workload": WORKLOAD,
        "variant": VARIANT.value,
        "seed": SEED,
        "measure_instructions": {str(k): v for k, v in MEASURE.items()},
        "metric": (
            "cycles_per_sec_critical = cycles / (max per-worker "
            "measured-phase CPU seconds + coordinator CPU seconds); the "
            "critical-path rate a multi-core host converges to. "
            "cycles_per_sec_wall is the observed wall rate on THIS host "
            f"(os.cpu_count()={os.cpu_count()}): with fewer cores than "
            "shards the workers time-share and wall time cannot improve."
        ),
        "host_cpu_count": os.cpu_count(),
        "calibration_iters_per_sec": iters,
        "meshes": {},
    }
    for n_cores in (64, 256):
        side = int(n_cores ** 0.5)
        print(f"{side}x{side} mesh ({n_cores} tiles):")
        data["meshes"][f"{side}x{side}"] = bench_mesh(n_cores, (2, 4))

    gate_points = data["meshes"]["16x16"]
    four = next(p for p in gate_points if p["shards"] == 4)
    data["aggregate"] = {
        "speedup_16x16_4shards_critical":
            four["speedup_critical_vs_1shard"],
        "all_identical": all(
            p.get("identical", True)
            for pts in data["meshes"].values() for p in pts
        ),
        "gate": SPEEDUP_GATE,
    }
    with open(out_path, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")

    if not data["aggregate"]["all_identical"]:
        print("FAILED: a sharded run diverged from single-process")
        return 1
    if (not args.no_gate
            and four["speedup_critical_vs_1shard"] < SPEEDUP_GATE):
        print(f"FAILED: 16x16 @ 4 shards critical-path speedup "
              f"{four['speedup_critical_vs_1shard']:.2f}x < "
              f"{SPEEDUP_GATE}x gate")
        return 1
    print(f"gate OK: 16x16 @ 4 shards = "
          f"{four['speedup_critical_vs_1shard']:.2f}x critical-path "
          f"speedup (gate {SPEEDUP_GATE}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
