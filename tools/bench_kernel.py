#!/usr/bin/env python
"""Benchmark the activity-driven kernel against forced always-tick mode.

Usage:
    PYTHONPATH=src python tools/bench_kernel.py            # default sweep
    PYTHONPATH=src python tools/bench_kernel.py --quick    # CI smoke
    PYTHONPATH=src python tools/bench_kernel.py --full     # + saturation rates

Every point runs the synthetic request-reply sweep twice on identical
seeds - once with ``Simulator.set_always_tick(True)`` (the legacy
cycle-driven behaviour) and once activity-driven - verifies the two
produce bit-identical stats and finish cycles, and times both with
``time.process_time()`` (CPU time: immune to scheduler noise), keeping
the best of ``--reps`` interleaved repetitions.

The default sweep covers the idle-dominated loads the kernel exists
for (0.25-1.0 requests/kcycle/node: long runs where most routers,
links and NIs are idle on any given cycle).  ``--full`` extends to the
standard load-sweep rates (2-48), where more components are busy each
cycle and the activity kernel converges to always-tick parity - those
points are reported but excluded from the headline aggregate.

Results land in BENCH_kernel.json (``--out``): per-point seconds,
cycles/sec and runs/sec for both modes, skip ratio, and the aggregate
speedup over the default sweep.
"""

import argparse
import json
import sys
import time

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant

DEFAULT_RATES = (0.25, 0.5, 1.0)
FULL_RATES = (2.0, 6.0, 12.0, 24.0, 48.0)
VARIANTS = (Variant.BASELINE, Variant.COMPLETE, Variant.COMPLETE_NOACK)


def snapshot(traffic):
    """Everything an equivalent run must reproduce exactly."""
    stats = traffic.net.stats
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (dict(h.buckets), h.count) for k, h in stats.histograms.items()},
        traffic.cycle,
        traffic.requests_sent,
        traffic.replies_received,
        tuple(traffic.reply_latencies),
    )


def one_run(variant, rate, cycles, seed, n_cores, always):
    """Build, run and drain one sweep point; return (traffic, cpu_seconds)."""
    cfg = SystemConfig(n_cores=n_cores).with_variant(variant)
    traffic = RequestReplyTraffic(cfg, rate, seed=seed)
    if always:
        traffic.sim.set_always_tick(True)
    start = time.process_time()
    traffic.run(cycles)
    traffic.drain()
    return traffic, time.process_time() - start


def bench_point(variant, rate, cycles, seed, n_cores, reps):
    """Time one (variant, rate) point in both modes, best-of-``reps``."""
    best = {"always": None, "activity": None}
    snaps = {}
    last = {}
    for _ in range(reps):
        for mode in ("always", "activity"):
            traffic, seconds = one_run(
                variant, rate, cycles, seed, n_cores, always=(mode == "always")
            )
            snaps.setdefault(mode, snapshot(traffic))
            last[mode] = traffic
            if best[mode] is None or seconds < best[mode]:
                best[mode] = seconds
    identical = snaps["always"] == snaps["activity"]
    sim = last["activity"].sim
    total_cycles = sim.cycle

    def mode_report(mode):
        seconds = best[mode]
        return {
            "seconds": round(seconds, 6),
            "cycles_per_sec": round(total_cycles / seconds) if seconds else None,
            "runs_per_sec": round(1.0 / seconds, 4) if seconds else None,
        }

    report = {
        "variant": variant.name,
        "rate_req_per_kcycle_node": rate,
        "cycles": cycles,
        "simulated_cycles": total_cycles,
        "identical": identical,
        "always": mode_report("always"),
        "activity": mode_report("activity"),
        "speedup": round(best["always"] / best["activity"], 3),
        "skip_ratio": round(sim.skip_ratio(), 4),
        "cycles_skipped": sim.cycles_skipped,
        "ticks_run": sim.ticks_run,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one rate, fewer cycles, one rep")
    parser.add_argument("--full", action="store_true",
                        help="also bench the saturation rates (2-48)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="injection cycles per point (default 50000)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per mode, best kept (default 2)")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_kernel.json")
    args = parser.parse_args(argv)

    if args.quick:
        rates, cycles, reps = (0.5,), 8000, 1
    else:
        rates, cycles, reps = DEFAULT_RATES, 50_000, 2
    cycles = args.cycles if args.cycles is not None else cycles
    reps = args.reps if args.reps is not None else reps

    points = []
    all_identical = True
    print(f"{'variant':<16} {'rate':>6} {'always':>9} {'activity':>9} "
          f"{'speedup':>8} {'skip':>6}  identical")
    for headline, sweep_rates in ((True, rates),
                                  (False, FULL_RATES if args.full else ())):
        for rate in sweep_rates:
            for variant in VARIANTS:
                point = bench_point(
                    variant, rate, cycles, args.seed, args.nodes, reps
                )
                point["headline"] = headline
                points.append(point)
                all_identical &= point["identical"]
                print(f"{point['variant']:<16} {rate:>6} "
                      f"{point['always']['seconds']:>8.3f}s "
                      f"{point['activity']['seconds']:>8.3f}s "
                      f"{point['speedup']:>7.2f}x "
                      f"{point['skip_ratio']:>6.2f}  {point['identical']}")

    head = [p for p in points if p["headline"]]
    always_s = sum(p["always"]["seconds"] for p in head)
    activity_s = sum(p["activity"]["seconds"] for p in head)
    sim_cycles = sum(p["simulated_cycles"] for p in head)
    aggregate = {
        "points": len(head),
        "always_seconds": round(always_s, 4),
        "activity_seconds": round(activity_s, 4),
        "always_cycles_per_sec": round(sim_cycles / always_s),
        "activity_cycles_per_sec": round(sim_cycles / activity_s),
        "speedup_cycles_per_sec": round(always_s / activity_s, 3),
        "all_identical": all_identical,
    }
    result = {
        "schema": 1,
        "config": {
            "n_cores": args.nodes,
            "cycles_per_point": cycles,
            "reps": reps,
            "seed": args.seed,
            "timer": "process_time",
            "mode": "quick" if args.quick else ("full" if args.full else "default"),
        },
        "points": points,
        "aggregate": aggregate,
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"\naggregate over {aggregate['points']} default-sweep points: "
          f"{aggregate['speedup_cycles_per_sec']}x "
          f"({aggregate['always_cycles_per_sec']} -> "
          f"{aggregate['activity_cycles_per_sec']} cycles/sec), "
          f"identical={all_identical}")
    print(f"wrote {args.out}")
    if not all_identical:
        print("ERROR: activity-driven run diverged from always-tick",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
