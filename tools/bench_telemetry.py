#!/usr/bin/env python
"""Measure telemetry overhead and enforce the <5% wall-time budget.

Usage:
    PYTHONPATH=src python tools/bench_telemetry.py           # default
    PYTHONPATH=src python tools/bench_telemetry.py --quick   # CI smoke

Runs the synthetic request-reply sweep twice on identical seeds - once
bare, once with the tracing telemetry configuration (metric sampling at
the default interval + message spans, the instruments an observed
experiment run keeps attached for its whole measurement phase) -
verifies the two produce bit-identical stats and finish cycles, and
times both with ``time.process_time()`` (CPU time: immune to scheduler
noise), keeping the best of ``--reps`` interleaved repetitions.

Exits non-zero if the tracing run is more than ``--budget`` (default 5%)
slower than bare at the default sampling interval, or if any point
diverges.  The kernel profiler is measured too but reported
informationally only: its per-tick ``perf_counter`` wrapper is the
measurement itself, so its cost (~8-10%) is the price of asking where
wall-time goes, not steady-state observation overhead.

Results land in BENCH_telemetry.json (``--out``); the Chrome trace of
the last observed point is exported under ``--trace-dir`` as a CI
artifact.
"""

import argparse
import json
import os
import sys
import time

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.telemetry import Telemetry, TelemetryConfig

RATES = (2.0, 12.0)


def snapshot(traffic):
    """Everything an equivalent run must reproduce exactly."""
    stats = traffic.net.stats
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (dict(h.buckets), h.count) for k, h in stats.histograms.items()},
        traffic.cycle,
    )


def one_run(variant, rate, cycles, seed, n_cores, config, trace_dir):
    """One sweep point; returns (snapshot, cpu_seconds, telemetry|None)."""
    cfg = SystemConfig(n_cores=n_cores).with_variant(variant)
    traffic = RequestReplyTraffic(cfg, rate, seed=seed)
    telem = None
    if config is not None:
        telem = Telemetry(config).attach(traffic)
    start = time.process_time()
    traffic.run(cycles)
    traffic.drain()
    seconds = time.process_time() - start
    if telem is not None:
        telem.detach()
    return snapshot(traffic), seconds, telem


def bench_point(variant, rate, cycles, seed, n_cores, reps, configs,
                trace_dir):
    """Time one (variant, rate) point in every mode, best-of-``reps``.

    ``configs`` maps mode name -> TelemetryConfig (or None for bare);
    modes are interleaved within each repetition so drift hits them all
    equally.
    """
    best = {mode: None for mode in configs}
    snaps = {}
    telem = None
    for _ in range(reps):
        for mode, config in configs.items():
            snap, seconds, t = one_run(
                variant, rate, cycles, seed, n_cores, config, trace_dir
            )
            snaps.setdefault(mode, snap)
            if t is not None and t.spans is not None:
                telem = t
            if best[mode] is None or seconds < best[mode]:
                best[mode] = seconds

    def overhead(mode):
        return (best[mode] - best["bare"]) / best["bare"] if best["bare"] \
            else 0.0

    return {
        "variant": variant.name,
        "rate_req_per_kcycle_node": rate,
        "cycles": cycles,
        "identical": all(s == snaps["bare"] for s in snaps.values()),
        "bare_seconds": round(best["bare"], 6),
        "trace_seconds": round(best["trace"], 6),
        "trace_overhead": round(overhead("trace"), 4),
        "profile_seconds": round(best["profile"], 6),
        "profile_overhead": round(overhead("profile"), 4),
        "samples": len(telem.registry) if telem is not None else 0,
        "spans": len(telem.spans.closed) if telem is not None else 0,
    }, telem


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one rate, fewer cycles, fewer reps")
    parser.add_argument("--cycles", type=int, default=None,
                        help="injection cycles per point (default 30000)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per mode, best kept (default 4)")
    parser.add_argument("--interval", type=int,
                        default=TelemetryConfig().interval,
                        help="sampling interval in cycles (default: the "
                             "TelemetryConfig default)")
    parser.add_argument("--budget", type=float, default=0.05,
                        help="max tolerated fractional overhead (default .05)")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--trace-dir", default=os.path.join("out", "trace"))
    args = parser.parse_args(argv)

    if args.quick:
        rates, cycles, reps = (12.0,), 10_000, 3
    else:
        rates, cycles, reps = RATES, 30_000, 4
    cycles = args.cycles if args.cycles is not None else cycles
    reps = args.reps if args.reps is not None else reps

    out_dirs = dict(out_dir=os.path.join(args.trace_dir, "..", "telemetry"),
                    trace_dir=args.trace_dir)
    configs = {
        "bare": None,
        "trace": TelemetryConfig(interval=args.interval, profile=False,
                                 **out_dirs),
        "profile": TelemetryConfig(interval=args.interval, metrics=False,
                                   spans=False, **out_dirs),
    }

    points = []
    telem = None
    print(f"{'variant':<16} {'rate':>6} {'bare':>9} {'trace':>9} "
          f"{'ovh':>7} {'profile':>9} {'ovh':>7}  identical")
    for rate in rates:
        for variant in (Variant.BASELINE, Variant.COMPLETE_NOACK):
            point, t = bench_point(
                variant, rate, cycles, args.seed, args.nodes, reps,
                configs, args.trace_dir,
            )
            if t is not None:
                telem = t
            points.append(point)
            print(f"{point['variant']:<16} {rate:>6} "
                  f"{point['bare_seconds']:>8.3f}s "
                  f"{point['trace_seconds']:>8.3f}s "
                  f"{point['trace_overhead']:>6.1%} "
                  f"{point['profile_seconds']:>8.3f}s "
                  f"{point['profile_overhead']:>6.1%}  {point['identical']}")

    # weight by bare time: long points dominate real experiment overhead
    bare_s = sum(p["bare_seconds"] for p in points)
    trace_s = sum(p["trace_seconds"] for p in points)
    profile_s = sum(p["profile_seconds"] for p in points)
    overhead = (trace_s - bare_s) / bare_s if bare_s else 0.0
    profile_overhead = (profile_s - bare_s) / bare_s if bare_s else 0.0
    all_identical = all(p["identical"] for p in points)
    trace_path = telem.export("bench_telemetry")["trace"] if telem else None
    result = {
        "schema": 1,
        "config": {
            "n_cores": args.nodes,
            "cycles_per_point": cycles,
            "reps": reps,
            "seed": args.seed,
            "interval": args.interval,
            "budget": args.budget,
            "timer": "process_time",
            "mode": "quick" if args.quick else "default",
        },
        "points": points,
        "aggregate": {
            "bare_seconds": round(bare_s, 4),
            "trace_seconds": round(trace_s, 4),
            "trace_overhead": round(overhead, 4),
            "profile_seconds": round(profile_s, 4),
            "profile_overhead": round(profile_overhead, 4),
            "all_identical": all_identical,
            "trace_artifact": trace_path,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"\naggregate: {overhead:+.1%} tracing overhead at interval "
          f"{args.interval} (budget {args.budget:.0%}); profiler "
          f"{profile_overhead:+.1%} (informational); "
          f"identical={all_identical}")
    print(f"wrote {args.out}" + (f" and {trace_path}" if trace_path else ""))
    if not all_identical:
        print("ERROR: telemetry-on run diverged from bare run",
              file=sys.stderr)
        return 1
    if overhead > args.budget:
        print(f"ERROR: tracing overhead {overhead:.1%} exceeds the "
              f"{args.budget:.0%} budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
