#!/usr/bin/env python
"""Full reproduction driver: regenerate every table and figure, both chip
sizes, and dump the rendered report plus a JSON result cache.

Usage:
    REPRO_SCALE=0.6 python tools/run_reproduction.py out/report.txt --jobs 4

The run honours REPRO_SCALE / REPRO_FULL / REPRO_CACHE / REPRO_JOBS like
the harness.  With more than one job, every simulation the report needs
is computed up front across worker processes; the rendering below then
assembles the identical results from the in-process memo.
"""

import argparse
import os
import sys
import time

from repro.harness import figures, parallel, render, tables
from repro.harness.experiment import RunSpec, default_workloads
from repro.sim.config import Variant


def _all_specs(workloads, full, seed):
    """Every spec the report simulates, deduplicated by key."""
    variants = [Variant.BASELINE]
    for group in (figures.FIG6_VARIANTS, figures.FIG7_VARIANTS,
                  figures.FIG8_VARIANTS, figures.FIG9_VARIANTS,
                  [Variant.COMPLETE_NOACK, Variant.SLACKDELAY1_NOACK]):
        for variant in group:
            if variant not in variants:
                variants.append(variant)
    specs = [
        RunSpec(cores, variant, workload, seed)
        for cores in (16, 64)
        for variant in variants
        for workload in workloads
    ]
    specs += [
        RunSpec(64, variant, workload, seed)
        for variant in (Variant.BASELINE, Variant.SLACKDELAY1_NOACK)
        for workload in full
    ]
    return specs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="reproduction_report.txt")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (0 = one per CPU core; "
                             "default: REPRO_JOBS or serial)")
    args = parser.parse_args(argv)

    workloads = default_workloads()
    full = default_workloads(full=True)
    lines = []

    def emit(text=""):
        print(text, flush=True)
        lines.append(text)

    t0 = time.time()
    from repro import api

    jobs = parallel.resolve_jobs(args.jobs)
    if api.service_address():
        # Shared job daemon: the fleet computes (and dedups) the batch;
        # rendering below consumes the memo-seeded results.
        specs = _all_specs(workloads, full, args.seed)
        print(f"submitting {len(specs)} spec(s) to the job daemon at "
              f"{api.service_address()}", file=sys.stderr, flush=True)
        api.results(api.submit(specs))
    elif jobs > 1:
        parallel.run_specs(
            _all_specs(workloads, full, args.seed), jobs=jobs,
            echo=lambda msg: print(msg, file=sys.stderr, flush=True),
        )

    emit(f"# Reactive Circuits reproduction report")
    emit(f"# scale={os.environ.get('REPRO_SCALE', '1.0')} "
         f"workloads={workloads}")
    emit()

    emit("## Table 6 - router area savings")
    emit(render.render_table6(tables.table6(), tables.TABLE6_PAPER))
    emit()

    for cores in (16, 64):
        emit(f"=================== {cores} cores ===================")
        emit(f"## Table 1 - message mix ({cores} cores)")
        emit(render.render_table1(tables.table1(workloads, cores, args.seed),
                                  tables.TABLE1_PAPER))
        emit()
        emit(f"## Table 5 - reservation ordinals ({cores} cores)")
        emit(render.render_table5(tables.table5(workloads, cores, args.seed),
                                  tables.TABLE5_PAPER))
        emit()
        emit(f"## Figure 6 - reply outcomes ({cores} cores)")
        emit(render.render_figure6(figures.figure6(workloads, cores, args.seed)))
        emit()
        emit(f"## Figure 7 - message latency ({cores} cores)")
        emit(render.render_figure7(figures.figure7(workloads, cores, args.seed)))
        emit()
        emit(f"## Figure 8 - normalised network energy ({cores} cores)")
        emit(render.render_ratio_figure(
            figures.figure8(workloads, cores, args.seed), "energy vs baseline"))
        emit()
        emit(f"## Figure 9 - speedup ({cores} cores)")
        emit(render.render_ratio_figure(
            figures.figure9(workloads, cores, args.seed), "speedup"))
        emit()
        emit(f"[{time.time() - t0:.0f}s elapsed]")

    emit("## Figure 10 - per-application speedup "
         "(64 cores, SlackDelay1+NoAck, all workloads)")
    emit(render.render_figure10(figures.figure10(full, 64, args.seed)))
    emit()
    emit(f"# total {time.time() - t0:.0f}s")

    with open(args.output, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
