#!/usr/bin/env python
"""Full reproduction driver: regenerate every table and figure, both chip
sizes, and dump the rendered report plus a JSON result cache.

Usage:
    REPRO_SCALE=0.6 python tools/run_reproduction.py out/report.txt

The run honours REPRO_SCALE / REPRO_FULL / REPRO_CACHE like the harness.
"""

import json
import os
import sys
import time

from repro.harness import figures, render, tables
from repro.harness.experiment import default_workloads


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.txt"
    workloads = default_workloads()
    full = default_workloads(full=True)
    lines = []

    def emit(text=""):
        print(text, flush=True)
        lines.append(text)

    t0 = time.time()
    emit(f"# Reactive Circuits reproduction report")
    emit(f"# scale={os.environ.get('REPRO_SCALE', '1.0')} "
         f"workloads={workloads}")
    emit()

    emit("## Table 6 - router area savings")
    emit(render.render_table6(tables.table6(), tables.TABLE6_PAPER))
    emit()

    for cores in (16, 64):
        emit(f"=================== {cores} cores ===================")
        emit(f"## Table 1 - message mix ({cores} cores)")
        emit(render.render_table1(tables.table1(workloads, cores),
                                  tables.TABLE1_PAPER))
        emit()
        emit(f"## Table 5 - reservation ordinals ({cores} cores)")
        emit(render.render_table5(tables.table5(workloads, cores),
                                  tables.TABLE5_PAPER))
        emit()
        emit(f"## Figure 6 - reply outcomes ({cores} cores)")
        emit(render.render_figure6(figures.figure6(workloads, cores)))
        emit()
        emit(f"## Figure 7 - message latency ({cores} cores)")
        emit(render.render_figure7(figures.figure7(workloads, cores)))
        emit()
        emit(f"## Figure 8 - normalised network energy ({cores} cores)")
        emit(render.render_ratio_figure(
            figures.figure8(workloads, cores), "energy vs baseline"))
        emit()
        emit(f"## Figure 9 - speedup ({cores} cores)")
        emit(render.render_ratio_figure(
            figures.figure9(workloads, cores), "speedup"))
        emit()
        emit(f"[{time.time() - t0:.0f}s elapsed]")

    emit("## Figure 10 - per-application speedup "
         "(64 cores, SlackDelay1+NoAck, all workloads)")
    emit(render.render_figure10(figures.figure10(full, 64)))
    emit()
    emit(f"# total {time.time() - t0:.0f}s")

    with open(out_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
