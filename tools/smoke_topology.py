#!/usr/bin/env python
"""Smoke equivalence matrix for the topology abstraction (CI gate).

Runs one small CMP workload on every registered topology (mesh, torus,
concentrated mesh) through all four engine cells - fastpath on/off x
shards 1/2 - and verifies the four runs are bit-identical per topology:
same stats counters, means, histograms and finish cycle.  ``shards=1``
is the plain single-process engine; ``shards=2`` exercises the sharded
coordinator including the torus's wraparound boundary channels.

Writes a JSON summary (``--out``, default ``out/topology_matrix.json``)
and exits non-zero on any mismatch.  No speed assertions - CI machine
speed varies; bit-identity is the gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cpu.workloads import workload_by_name  # noqa: E402
from repro.noc.topology import TOPOLOGY_CHOICES  # noqa: E402
from repro.sim.config import Variant, small_test_config  # noqa: E402
from repro.sim.shard import run_sharded  # noqa: E402
from repro.system import CmpSystem  # noqa: E402

WORKLOAD = "canneal"
VARIANT = Variant.COMPLETE_NOACK
SEED = 3
N_CORES = 16
MEASURE = 120  # instructions per core, measure-only (no warmup)


def _snapshot(stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def _config(topology: str, fastpath: bool):
    config = small_test_config(N_CORES, VARIANT, seed=SEED)
    return dataclasses.replace(
        config,
        noc=dataclasses.replace(config.noc, topology=topology,
                                fastpath=fastpath),
    )


def run_cell(topology: str, fastpath: bool, n_shards: int) -> dict:
    config = _config(topology, fastpath)
    wall0 = time.perf_counter()
    if n_shards == 1:
        system = CmpSystem(config, workload_by_name(WORKLOAD))
        finish = system.run_instructions(MEASURE)
        snapshot = _snapshot(system.stats)
    else:
        result = run_sharded(config, WORKLOAD, 0, MEASURE,
                             n_shards=n_shards, check=False)
        finish = result.finish_cycle
        snapshot = _snapshot(result.stats)
    return {
        "topology": topology,
        "fastpath": fastpath,
        "shards": n_shards,
        "finish_cycle": finish,
        "wall_seconds": round(time.perf_counter() - wall0, 3),
        "snapshot": snapshot,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="out/topology_matrix.json")
    parser.add_argument("--topologies", nargs="*", default=TOPOLOGY_CHOICES,
                        choices=TOPOLOGY_CHOICES, metavar="NAME")
    args = parser.parse_args()

    report = {"workload": WORKLOAD, "variant": VARIANT.value,
              "n_cores": N_CORES, "measure": MEASURE, "cells": []}
    failures = []
    for topology in args.topologies:
        cells = [run_cell(topology, fastpath, shards)
                 for fastpath in (True, False) for shards in (1, 2)]
        reference = cells[0]
        for cell in cells:
            ok = (cell["snapshot"] == reference["snapshot"]
                  and cell["finish_cycle"] == reference["finish_cycle"])
            label = (f"{topology} fastpath={cell['fastpath']} "
                     f"shards={cell['shards']}")
            print(f"  {label:34s} finish={cell['finish_cycle']:8d}  "
                  f"{'OK' if ok else 'MISMATCH'}  "
                  f"({cell['wall_seconds']:.1f}s)")
            if not ok:
                failures.append(label)
            entry = dict(cell)
            entry.pop("snapshot")
            entry["bit_identical"] = ok
            report["cells"].append(entry)

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"written: {args.out}")
    if failures:
        print("MISMATCHED CELLS:")
        for label in failures:
            print(f"  {label}")
        return 1
    print(f"all {len(report['cells'])} cells bit-identical "
          f"({len(args.topologies)} topologies x fastpath on/off "
          f"x shards 1/2)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
