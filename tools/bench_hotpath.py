#!/usr/bin/env python
"""Benchmark the saturation hot path against the reference pipeline.

Usage:
    PYTHONPATH=src python tools/bench_hotpath.py             # full bench
    PYTHONPATH=src python tools/bench_hotpath.py --smoke     # CI gate
    PYTHONPATH=src python tools/bench_hotpath.py --profile   # + attribution

Every point runs the synthetic request-reply workload at a saturating
injection rate twice on identical seeds - once on the overhauled fast
pipeline (``config.noc.fastpath = True``: merged router tick, fused
kernel tick_wake, precomputed route tables, index-rotation arbiters,
batched counters) and once on the pre-overhaul reference pipeline
(``fastpath = False``) - verifies the two produce bit-identical stats
and finish cycles, and times both with ``time.process_time`` (CPU time:
immune to scheduler noise), keeping the best of ``--reps`` interleaved
repetitions.

Two speedups are reported per point:

* ``speedup_vs_reference`` - fast vs. reference, measured in the same
  process invocation.  Interleaving makes this ratio robust to machine
  load, so it is the primary metric.
* ``speedup_vs_pre_pr`` - fast vs. the absolute cycles/sec recorded at
  the pre-overhaul commit on the machine that produced the committed
  ``BENCH_hotpath.json``.  Only comparable on that machine.

``--smoke`` is the CI regression gate: it reruns the default-config
point (BASELINE, the repo's default variant) fast-path only, scales the
committed reference cycles/sec by a calibration loop (so a slower or
faster CI runner does not produce false alarms), and fails if the
measured throughput drops more than 10% below the scaled reference.

``--profile`` additionally attaches the ``KernelProfiler`` to one run
per pipeline and records the per-class attribution (the before/after
evidence for where the time went).
"""

import argparse
import dataclasses
import json
import os
import sys
import time

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.telemetry import KernelProfiler

#: Saturating load (requests/kcycle/node) for the 16-node mesh: the
#: regime where the busy-phase pipeline dominates wall time (the
#: activity kernel is at parity here, see BENCH_kernel.json --full).
SATURATION_RATE = 48.0

VARIANTS = (Variant.BASELINE, Variant.COMPLETE, Variant.FRAGMENTED,
            Variant.IDEAL)

#: The repo's default configuration (SystemConfig() with no variant
#: override) - the point the CI gate regresses against.
DEFAULT_VARIANT = Variant.BASELINE

#: Absolute fast-path throughput at the pre-overhaul commit, measured on
#: the machine that produced the committed BENCH_hotpath.json (same
#: workload: 16 cores, rate 48, 6000 injection cycles + drain, seed 1).
PRE_PR = {
    "commit": "842ad52",
    "cycles_per_sec": {
        "BASELINE": 3198,
        "COMPLETE": 3371,
        "FRAGMENTED": 3346,
    },
}


def calibrate(iters=3_000_000, rounds=3):
    """Pure-python busy-loop speed (iterations/sec, best of ``rounds``).

    The smoke gate scales the committed reference throughput by the
    ratio of this number across machines, so a slower CI runner is not
    mistaken for a performance regression.
    """
    best = 0.0
    for _ in range(rounds):
        x = 1
        start = time.process_time()
        for _ in range(iters):
            x = (x * 1103515245 + 12345) & 0xFFFFFFFF
        seconds = time.process_time() - start
        if seconds > 0:
            best = max(best, iters / seconds)
    return best


def snapshot(traffic):
    """Everything an equivalent run must reproduce exactly."""
    stats = traffic.net.stats
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (dict(h.buckets), h.count) for k, h in stats.histograms.items()},
        traffic.cycle,
        traffic.requests_sent,
        traffic.replies_received,
        tuple(traffic.reply_latencies),
    )


def build(variant, fastpath, n_cores, seed):
    cfg = SystemConfig(n_cores=n_cores).with_variant(variant)
    cfg = dataclasses.replace(
        cfg, noc=dataclasses.replace(cfg.noc, fastpath=fastpath)
    )
    return RequestReplyTraffic(cfg, SATURATION_RATE, seed=seed)


def one_run(variant, fastpath, cycles, seed, n_cores, profiler=None):
    traffic = build(variant, fastpath, n_cores, seed)
    if profiler is not None:
        profiler.attach(traffic.sim)
    start = time.process_time()
    traffic.run(cycles)
    traffic.drain()
    seconds = time.process_time() - start
    if profiler is not None:
        profiler.detach()
    return traffic, seconds


def profile_classes(variant, fastpath, cycles, seed, n_cores):
    """Per-class attribution of one profiled run (not used for timing)."""
    profiler = KernelProfiler()
    one_run(variant, fastpath, cycles, seed, n_cores, profiler=profiler)
    report = profiler.report()
    return {
        "overhead_per_tick_ns": round(report["overhead_per_tick"] * 1e9, 1),
        "classes": {
            name: {
                "ticks": row["ticks"],
                "seconds": round(row["seconds"], 4),
                "seconds_corrected": round(row["seconds_corrected"], 4),
                "share": round(row["share"], 4),
            }
            for name, row in report["classes"].items()
        },
    }


def bench_point(variant, cycles, seed, n_cores, reps, with_profile):
    """Time one variant on both pipelines, interleaved best-of-``reps``."""
    best = {"fast": None, "reference": None}
    snaps = {}
    total_cycles = None
    for _ in range(reps):
        for mode, fastpath in (("fast", True), ("reference", False)):
            traffic, seconds = one_run(variant, fastpath, cycles, seed,
                                       n_cores)
            snaps.setdefault(mode, snapshot(traffic))
            if mode == "fast":
                total_cycles = traffic.sim.cycle
            if best[mode] is None or seconds < best[mode]:
                best[mode] = seconds

    def mode_report(mode):
        seconds = best[mode]
        return {
            "seconds": round(seconds, 6),
            "cycles_per_sec": round(total_cycles / seconds) if seconds else None,
        }

    point = {
        "variant": variant.name,
        "rate_req_per_kcycle_node": SATURATION_RATE,
        "cycles": cycles,
        "simulated_cycles": total_cycles,
        "identical": snaps["fast"] == snaps["reference"],
        "fast": mode_report("fast"),
        "reference": mode_report("reference"),
        "speedup_vs_reference": round(best["reference"] / best["fast"], 3),
    }
    pre = PRE_PR["cycles_per_sec"].get(variant.name)
    if pre:
        point["speedup_vs_pre_pr"] = round(
            point["fast"]["cycles_per_sec"] / pre, 3
        )
    if with_profile:
        point["profile"] = {
            "fast": profile_classes(variant, True, cycles, seed, n_cores),
            "reference": profile_classes(variant, False, cycles, seed,
                                         n_cores),
        }
    return point


def smoke(args):
    """CI gate: default-config throughput vs. the committed reference."""
    if not os.path.exists(args.reference):
        print(f"ERROR: no committed reference at {args.reference}",
              file=sys.stderr)
        return 1
    with open(args.reference) as fh:
        committed = json.load(fh)
    ref_point = next(
        p for p in committed["points"]
        if p["variant"] == DEFAULT_VARIANT.name
    )
    ref_cps = ref_point["fast"]["cycles_per_sec"]
    ref_cal = committed["calibration_iters_per_sec"]

    cal = calibrate()
    scale = cal / ref_cal
    floor = ref_cps * scale * (1.0 - args.tolerance)

    cycles = args.cycles if args.cycles is not None else 2000
    reps = args.reps if args.reps is not None else 2
    best = None
    total_cycles = None
    for _ in range(reps):
        traffic, seconds = one_run(DEFAULT_VARIANT, True, cycles, args.seed,
                                   args.nodes)
        total_cycles = traffic.sim.cycle
        if best is None or seconds < best:
            best = seconds
    cps = total_cycles / best
    print(f"calibration: {cal:,.0f} iters/sec here vs "
          f"{ref_cal:,.0f} committed (scale {scale:.2f})")
    print(f"{DEFAULT_VARIANT.name} fast path: {cps:,.0f} cycles/sec; "
          f"floor {floor:,.0f} "
          f"(committed {ref_cps:,} x {scale:.2f} x "
          f"{1.0 - args.tolerance:.2f})")
    if cps < floor:
        print("ERROR: saturation throughput regressed below the gate",
              file=sys.stderr)
        return 1
    print("smoke gate passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI regression gate against the committed "
                             "BENCH_hotpath.json (calibration-scaled)")
    parser.add_argument("--profile", action="store_true",
                        help="attach KernelProfiler and record per-class "
                             "attribution for both pipelines")
    parser.add_argument("--cycles", type=int, default=None,
                        help="injection cycles per point (default 6000; "
                             "smoke 2000)")
    parser.add_argument("--reps", type=int, default=None,
                        help="interleaved repetitions, best kept "
                             "(default 3; smoke 2)")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional drop in --smoke mode")
    parser.add_argument("--reference", default="BENCH_hotpath.json",
                        help="committed reference JSON (--smoke input)")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args)

    cycles = args.cycles if args.cycles is not None else 6000
    reps = args.reps if args.reps is not None else 3

    cal = calibrate()
    points = []
    all_identical = True
    print(f"{'variant':<12} {'reference':>10} {'fast':>10} "
          f"{'vs ref':>7} {'vs pre-PR':>10}  identical")
    for variant in VARIANTS:
        point = bench_point(variant, cycles, args.seed, args.nodes, reps,
                            args.profile)
        points.append(point)
        all_identical &= point["identical"]
        pre = point.get("speedup_vs_pre_pr")
        print(f"{point['variant']:<12} "
              f"{point['reference']['cycles_per_sec']:>8} c/s "
              f"{point['fast']['cycles_per_sec']:>8} c/s "
              f"{point['speedup_vs_reference']:>6.2f}x "
              f"{pre if pre is not None else '-':>9}  "
              f"{point['identical']}")

    result = {
        "schema": 1,
        "config": {
            "n_cores": args.nodes,
            "rate_req_per_kcycle_node": SATURATION_RATE,
            "cycles_per_point": cycles,
            "reps": reps,
            "seed": args.seed,
            "timer": "process_time",
        },
        "calibration_iters_per_sec": round(cal),
        "pre_pr": PRE_PR,
        "points": points,
        "aggregate": {
            "all_identical": all_identical,
            "default_variant": DEFAULT_VARIANT.name,
            "default_speedup_vs_reference": next(
                p["speedup_vs_reference"] for p in points
                if p["variant"] == DEFAULT_VARIANT.name
            ),
            "default_speedup_vs_pre_pr": next(
                (p.get("speedup_vs_pre_pr") for p in points
                 if p["variant"] == DEFAULT_VARIANT.name), None
            ),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    if not all_identical:
        print("ERROR: fast pipeline diverged from the reference",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
